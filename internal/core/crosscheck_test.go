package core

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/hhc"
)

// TestMatchesFlowBaselineWidth confirms on real instances that the
// constructed container width m+1 equals the maximum found by max flow —
// i.e. the construction achieves Menger's bound, so the network connectivity
// is exactly m+1.
func TestMatchesFlowBaselineWidth(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		g := mustGraph(t, m)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(m * 13)))
		for trial := 0; trial < 25; trial++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			if u == v {
				continue
			}
			paths, err := DisjointPaths(g, u, v)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyContainer(g, u, v, paths); err != nil {
				t.Fatal(err)
			}
			flowPaths, err := flow.VertexDisjointPaths(dg, g.ID(u), g.ID(v), 0, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(flowPaths) != m+1 {
				t.Fatalf("m=%d: flow finds %d paths, construction %d", m, len(flowPaths), len(paths))
			}
		}
	}
}

// TestConnectivityIsExactlyDegree proves connectivity m+1 both ways: the
// construction provides m+1 disjoint paths (lower bound) and any node's
// neighborhood is a cut of size m+1 (upper bound, via flow on a
// neighbor-separated pair).
func TestConnectivityIsExactlyDegree(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		g := mustGraph(t, m)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		// Pick non-adjacent u, v: local connectivity must be exactly m+1.
		u := hhc.Node{X: 0, Y: 0}
		v := hhc.Node{X: (1 << uint(g.T())) - 1, Y: uint8(g.T() - 1)}
		k, err := flow.LocalConnectivity(dg, g.ID(u), g.ID(v))
		if err != nil {
			t.Fatal(err)
		}
		if k != m+1 {
			t.Fatalf("m=%d: local connectivity %d, want %d", m, k, m+1)
		}
	}
}

// TestPathLengthReasonable compares container max length against the BFS
// distance: the slack must stay within the analytic bound and should
// typically be small.
func TestPathLengthReasonable(t *testing.T) {
	g := mustGraph(t, 3)
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		if u == v {
			continue
		}
		paths, err := DisjointPaths(g, u, v)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := g.Distance(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if MaxLength(paths) < d {
			t.Fatalf("container max %d below distance %d!?", MaxLength(paths), d)
		}
		if MaxLength(paths) > MaxLenBound(g, u, v) {
			t.Fatalf("container max %d above bound %d", MaxLength(paths), MaxLenBound(g, u, v))
		}
	}
}

// TestVerifyDisjointFailureInjection mutates valid families in targeted ways
// and demands rejection — guarding the guard.
func TestVerifyDisjointFailureInjection(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 0b0001, Y: 0}, hhc.Node{X: 0b1110, Y: 3}
	paths, err := DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyContainer(g, u, v, paths); err != nil {
		t.Fatal(err)
	}

	clone := func() [][]hhc.Node {
		out := make([][]hhc.Node, len(paths))
		for i, p := range paths {
			out[i] = append([]hhc.Node(nil), p...)
		}
		return out
	}

	// Duplicate one path: shares all internals.
	dup := clone()
	dup[0] = append([]hhc.Node(nil), dup[1]...)
	if len(dup[1]) > 2 {
		if err := VerifyDisjoint(g, u, v, dup); err == nil {
			t.Error("duplicated path accepted")
		}
	}

	// Truncate a path: wrong endpoint.
	trunc := clone()
	trunc[0] = trunc[0][:len(trunc[0])-1]
	if err := VerifyDisjoint(g, u, v, trunc); err == nil {
		t.Error("truncated path accepted")
	}

	// Teleport: replace a middle vertex with a non-adjacent one.
	if len(paths[0]) > 3 {
		tele := clone()
		tele[0][1] = hhc.Node{X: tele[0][1].X ^ 0b1111, Y: tele[0][1].Y}
		if err := VerifyDisjoint(g, u, v, tele); err == nil {
			t.Error("teleporting path accepted")
		}
	}

	// Wrong cardinality for VerifyContainer.
	if err := VerifyContainer(g, u, v, paths[:2]); err == nil {
		t.Error("short container accepted")
	}
}

// TestRouteAroundGuarantee: for every fault set of size <= m avoiding the
// endpoints, RouteAround must succeed with a fault-free path.
func TestRouteAroundGuarantee(t *testing.T) {
	g := mustGraph(t, 3)
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		if u == v {
			continue
		}
		faults := map[hhc.Node]bool{}
		for len(faults) < g.M() {
			f := g.RandomNode(r)
			if f != u && f != v {
				faults[f] = true
			}
		}
		p, err := RouteAround(g, u, v, faults)
		if err != nil {
			t.Fatalf("RouteAround with %d faults failed: %v", len(faults), err)
		}
		if err := g.VerifyPath(u, v, p); err != nil {
			t.Fatal(err)
		}
		for _, w := range p {
			if faults[w] {
				t.Fatalf("returned path passes through fault %v", w)
			}
		}
	}
}

// TestRouteAroundAdversarial blocks all but one container path with faults
// placed directly on the construction's own output, then demands the
// survivor is returned.
func TestRouteAroundAdversarial(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 0b0000, Y: 0}, hhc.Node{X: 0b1111, Y: 3}
	paths, err := DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	faults := map[hhc.Node]bool{}
	// Put one fault in the middle of every path except the last.
	for _, p := range paths[:len(paths)-1] {
		if len(p) > 2 {
			faults[p[len(p)/2]] = true
		}
	}
	got, err := RouteAround(g, u, v, faults)
	if err != nil {
		t.Fatalf("RouteAround: %v", err)
	}
	for _, w := range got {
		if faults[w] {
			t.Fatalf("survivor hits fault %v", w)
		}
	}
	// Now block every path: must fail with ErrAllPathsFaulty.
	for _, p := range paths {
		if len(p) > 2 {
			faults[p[len(p)/2]] = true
		}
	}
	if _, err := RouteAround(g, u, v, faults); err != ErrAllPathsFaulty {
		t.Fatalf("want ErrAllPathsFaulty, got %v", err)
	}
}

func TestRouteAroundFaultyEndpoints(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 1, Y: 0}, hhc.Node{X: 2, Y: 1}
	if _, err := RouteAround(g, u, v, map[hhc.Node]bool{u: true}); err == nil {
		t.Error("faulty source: want error")
	}
	if _, err := RouteAround(g, u, v, map[hhc.Node]bool{v: true}); err == nil {
		t.Error("faulty destination: want error")
	}
}

func TestSurvivingPaths(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 0, Y: 0}, hhc.Node{X: 5, Y: 2}
	paths, err := DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if got := SurvivingPaths(paths, nil); len(got) != len(paths) {
		t.Fatalf("no faults: %d of %d survive", len(got), len(paths))
	}
	faults := map[hhc.Node]bool{paths[0][1]: true}
	got := SurvivingPaths(paths, faults)
	if len(got) != len(paths)-1 {
		t.Fatalf("one fault: %d of %d survive", len(got), len(paths))
	}
}
