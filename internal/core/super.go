package core

import (
	"fmt"

	"repro/internal/hypercube"
)

// selectSupers picks `count` super-paths (dimension sequences from a to b in
// the t-cube of son-cube addresses) satisfying the port discipline:
//
//   - pairwise internally node-disjoint in Q_t (rotations of one cyclic
//     order plus detours through distinct outside dimensions);
//   - pairwise distinct first dimensions and pairwise distinct last
//     dimensions (so son-cube exits and entries never collide);
//   - exactly one sequence starts with aDim = dec(α) — the only super-path
//     allowed to leave the source through its external edge — and exactly
//     one ends with bDim = dec(β).
//
// The count-path family always exists because t = 2^m ≥ m+1 candidates are
// available: all |D| rotations and a detour for every dimension outside D.
func selectSupers(t, count int, mask uint64, order []int, aDim, bDim int, detourPref []int) ([][]int, error) {
	d := len(order)
	if d == 0 {
		return nil, fmt.Errorf("core: empty dimension set")
	}
	pos := make(map[int]int, d)
	for i, dim := range order {
		pos[dim] = i
	}
	inD := func(j int) bool { return mask&(1<<uint(j)) != 0 }

	seqs := make([][]int, 0, count)
	rotUsed := make([]bool, d)
	detUsed := make(map[int]bool, t-d)
	addRot := func(i int) {
		if !rotUsed[i] {
			rotUsed[i] = true
			seqs = append(seqs, hypercube.Rotation(order, i))
		}
	}
	addDet := func(j int) {
		if !detUsed[j] {
			detUsed[j] = true
			seqs = append(seqs, hypercube.Detour(order, j))
		}
	}

	// The mandatory first-dimension path (leaves u externally).
	if inD(aDim) {
		addRot(pos[aDim])
	} else {
		addDet(aDim)
	}
	// The mandatory last-dimension path (enters v externally). The rotation
	// ending at bDim is the one starting right after it in cyclic order.
	if inD(bDim) {
		addRot((pos[bDim] + 1) % d)
	} else {
		addDet(bDim)
	}

	// Fill with the remaining rotations (length d beats detours' d+2), then
	// with detours through the smallest dimensions outside D. Dimensions
	// aDim and bDim are never picked here: when outside D their detours were
	// already added above, and when inside D no detour through them exists.
	for i := 0; i < d && len(seqs) < count; i++ {
		addRot(i)
	}
	if detourPref == nil {
		detourPref = make([]int, t)
		for i := range detourPref {
			detourPref[i] = i
		}
	}
	for _, j := range detourPref {
		if len(seqs) >= count {
			break
		}
		if !inD(j) && j != aDim && j != bDim {
			addDet(j)
		}
	}
	if len(seqs) != count {
		return nil, fmt.Errorf("core: selected %d super-paths, want %d (d=%d, t=%d)", len(seqs), count, d, t)
	}
	return seqs, nil
}
