package core

import (
	"errors"
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/hhc"
)

// Node-to-set containers: k <= m+1 paths from one source to k distinct
// targets, pairwise sharing no vertex except the source, with no path
// passing through another target. The companion notion to the one-to-one
// container (by the fan version of Menger's theorem such a family exists
// for any k <= connectivity).
//
// Unlike the one-to-one construction, this uses the exact flow solver on
// the materialized network and is therefore limited to enumerable sizes
// (m <= hhc.MaxDenseM). A constructive poly(n) one-to-set algorithm is the
// natural follow-up work; the flow version provides the ground truth it
// would be tested against.

// DisjointPathsToSet returns len(targets) paths from u to each target,
// pairwise vertex-disjoint except at u, with no path crossing another
// target. Requires 1 <= len(targets) <= m+1, distinct targets != u, and
// m <= hhc.MaxDenseM.
func DisjointPathsToSet(g *hhc.Graph, u hhc.Node, targets []hhc.Node) ([][]hhc.Node, error) {
	k := len(targets)
	if k == 0 {
		return nil, fmt.Errorf("core: empty target set")
	}
	if k > g.Degree() {
		return nil, fmt.Errorf("core: %d targets exceed container width %d", k, g.Degree())
	}
	if !g.Contains(u) {
		return nil, fmt.Errorf("core: invalid source %s", g.FormatNode(u))
	}
	seen := make(map[hhc.Node]bool, k)
	for _, t := range targets {
		if !g.Contains(t) {
			return nil, fmt.Errorf("core: invalid target %s", g.FormatNode(t))
		}
		if t == u {
			return nil, fmt.Errorf("core: target equals source %s", g.FormatNode(u))
		}
		if seen[t] {
			return nil, fmt.Errorf("core: duplicate target %s", g.FormatNode(t))
		}
		seen[t] = true
	}
	dg, err := g.Dense()
	if err != nil {
		return nil, fmt.Errorf("core: one-to-set needs an enumerable network: %w", err)
	}
	ids := make([]uint64, k)
	for i, t := range targets {
		ids[i] = g.ID(t)
	}
	fan, err := flow.VertexDisjointFan(dg, g.ID(u), ids)
	if err != nil {
		return nil, err
	}
	out := make([][]hhc.Node, k)
	for i, p := range fan {
		out[i] = g.PathFromIDs(p)
	}
	return out, nil
}

// VerifySetContainer checks the one-to-set disjointness property: each path
// i runs from u to targets[i], paths share only u, and no path contains a
// foreign target.
func VerifySetContainer(g *hhc.Graph, u hhc.Node, targets []hhc.Node, paths [][]hhc.Node) error {
	if len(paths) != len(targets) {
		return fmt.Errorf("core: %d paths for %d targets", len(paths), len(targets))
	}
	targetSet := make(map[hhc.Node]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}
	seen := make(map[hhc.Node]int)
	for i, p := range paths {
		if err := g.VerifyPath(u, targets[i], p); err != nil {
			return fmt.Errorf("path %d: %w", i, err)
		}
		for _, w := range p[1:] {
			if w != targets[i] && targetSet[w] {
				return fmt.Errorf("core: path %d passes through foreign target %s", i, g.FormatNode(w))
			}
		}
		for _, w := range p[1:] {
			if prev, ok := seen[w]; ok {
				return fmt.Errorf("core: paths %d and %d share %s", prev, i, g.FormatNode(w))
			}
			seen[w] = i
		}
	}
	return nil
}

// SetContainerWidth returns the maximum k for which a one-to-set container
// from u to a prefix of targets exists, by running the max-flow fan at
// decreasing sizes. Exposed mainly for analysis tooling.
func SetContainerWidth(g *hhc.Graph, u hhc.Node, targets []hhc.Node) (int, error) {
	limit := len(targets)
	if d := g.Degree(); d < limit {
		limit = d
	}
	for k := limit; k >= 1; k-- {
		_, err := DisjointPathsToSet(g, u, targets[:k])
		switch {
		case err == nil:
			return k, nil
		case errors.Is(err, graph.ErrTooLarge):
			return 0, err
		}
	}
	return 0, nil
}
