package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hhc"
)

// ExampleDisjointPaths constructs the maximum container between two nodes
// and verifies it.
func ExampleDisjointPaths() {
	g, err := hhc.New(3) // HHC_11: 2048 nodes, degree 4
	if err != nil {
		log.Fatal(err)
	}
	u := hhc.Node{X: 0x00, Y: 0}
	v := hhc.Node{X: 0xFF, Y: 5}
	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paths:", len(paths))
	fmt.Println("verified:", core.VerifyContainer(g, u, v, paths) == nil)
	// Output:
	// paths: 4
	// verified: true
}

// ExampleRouteAround survives faults up to the connectivity bound.
func ExampleRouteAround() {
	g, err := hhc.New(2)
	if err != nil {
		log.Fatal(err)
	}
	u := hhc.Node{X: 0x0, Y: 0}
	v := hhc.Node{X: 0xF, Y: 3}
	// Two faults (m = 2): a survivor is guaranteed.
	faults := map[hhc.Node]bool{
		{X: 0x1, Y: 0}: true,
		{X: 0x7, Y: 1}: true,
	}
	p, err := core.RouteAround(g, u, v, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("survivor found:", len(p) > 0)
	// Output:
	// survivor found: true
}

// ExampleDisjointPathsBatch fans a workload across CPU cores.
func ExampleDisjointPathsBatch() {
	g, err := hhc.New(3)
	if err != nil {
		log.Fatal(err)
	}
	pairs := []core.Pair{
		{U: hhc.Node{X: 1, Y: 0}, V: hhc.Node{X: 2, Y: 3}},
		{U: hhc.Node{X: 9, Y: 5}, V: hhc.Node{X: 9, Y: 2}},
	}
	results := core.DisjointPathsBatch(g, pairs, core.Options{}, 0)
	for i, r := range results {
		fmt.Printf("pair %d: %d paths, err=%v\n", i, len(r.Paths), r.Err)
	}
	// Output:
	// pair 0: 4 paths, err=<nil>
	// pair 1: 4 paths, err=<nil>
}
