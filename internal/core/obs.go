package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Observer carries the construction pipeline's instrumentation: per-phase
// latency histograms and a span tracer. It is installed process-wide with
// SetObserver so DisjointPathsOpt keeps its signature; with no observer
// installed the hot path pays one atomic load and nothing else (measured
// < 2% on BenchmarkConstruct).
//
// Field histograms may be nil individually (obs metrics are nil-safe), so
// partial observers — tracer only, metrics only — work without branching.
type Observer struct {
	// Tracer receives one span per construction plus one per phase.
	Tracer *obs.Tracer
	// SameCube / CrossCube time whole constructions by topology case.
	SameCube  *obs.Histogram
	CrossCube *obs.Histogram
	// Derive, Select, Realize time the cross-cube phases: base-sequence
	// derivation (cyclic order + detour preference), super-path selection
	// under the confinement mask, and lifting into concrete paths.
	Derive  *obs.Histogram
	Select  *obs.Histogram
	Realize *obs.Histogram
	// Verify times VerifyDisjoint runs (the optional checking phase).
	Verify *obs.Histogram
	// Errors counts failed constructions.
	Errors *obs.Counter

	// Batch metrics: items processed, queue wait from batch start to item
	// pickup, cumulative worker busy time, and live worker count.
	BatchItems     *obs.Counter
	BatchQueueWait *obs.Histogram
	BatchBusyNanos *obs.Counter
	BatchWorkers   *obs.Gauge
}

// NewObserver builds an Observer whose metrics live in reg under the
// core_* namespace. tr may be nil for metrics-only observation.
func NewObserver(reg *obs.Registry, tr *obs.Tracer) *Observer {
	construct := func(kind string) *obs.Histogram {
		return reg.Histogram(`core_construct_seconds{kind="`+kind+`"}`,
			"Wall time of one disjoint-path container construction.", obs.DefLatencyBuckets)
	}
	phase := func(name string) *obs.Histogram {
		return reg.Histogram(`core_construct_phase_seconds{phase="`+name+`"}`,
			"Wall time of one construction phase.", obs.DefLatencyBuckets)
	}
	return &Observer{
		Tracer:    tr,
		SameCube:  construct("same-cube"),
		CrossCube: construct("cross-cube"),
		Derive:    phase("derive"),
		Select:    phase("select"),
		Realize:   phase("realize"),
		Verify:    phase("verify"),
		Errors: reg.Counter("core_construct_errors_total",
			"Constructions that returned an error."),
		BatchItems: reg.Counter("core_batch_items_total",
			"Pairs processed by batch construction."),
		BatchQueueWait: reg.Histogram("core_batch_queue_wait_seconds",
			"Wait from batch start until a worker picked the pair up.", obs.DefLatencyBuckets),
		BatchBusyNanos: reg.Counter("core_batch_worker_busy_nanoseconds_total",
			"Cumulative time batch workers spent constructing (vs. idle)."),
		BatchWorkers: reg.Gauge("core_batch_workers_active",
			"Batch worker goroutines currently running."),
	}
}

// observer is the installed instrumentation; nil = disabled.
var observer atomic.Pointer[Observer]

// SetObserver installs o process-wide (nil disables instrumentation).
// Safe to call concurrently with constructions; in-flight calls finish
// against whichever observer they loaded.
func SetObserver(o *Observer) { observer.Store(o) }

// CurrentObserver returns the installed observer, or nil.
func CurrentObserver() *Observer { return observer.Load() }

// phaseDone is returned by startPhase; calling it closes the phase.
type phaseDone func()

// noopDone is shared so the disabled path never allocates.
var noopDone phaseDone = func() {}

// startPhase opens a tracer span and starts the clock for one histogram.
// Works on a nil Observer (returns a no-op).
func (o *Observer) startPhase(name string, h *obs.Histogram, attrs ...obs.Attr) phaseDone {
	if o == nil {
		return noopDone
	}
	sp := o.Tracer.Start(name, attrs...)
	t0 := time.Now()
	return func() {
		h.ObserveDuration(time.Since(t0))
		sp.End()
	}
}

// batchSpan is the batch pipeline's handle on its instrumentation: the
// whole obs surface DisjointPathsBatchFunc needs, quarantined here so the
// batch code itself never calls into internal/obs (the obscost analyzer
// enforces that split). A nil *batchSpan is the disabled path and every
// method is nil-receiver safe.
type batchSpan struct {
	o     *Observer
	start time.Time
	sp    *obs.Active
}

// startBatch opens the batch trace span. Returns nil when instrumentation
// is off, so callers can keep a zero-cost fast path behind one nil check.
func (o *Observer) startBatch(pairs, workers int) *batchSpan {
	if o == nil {
		return nil
	}
	return &batchSpan{
		o:     o,
		start: time.Now(),
		sp: o.Tracer.Start("batch",
			obs.String("pairs", strconv.Itoa(pairs)),
			obs.String("workers", strconv.Itoa(workers))),
	}
}

func (b *batchSpan) end() {
	if b != nil {
		b.sp.End()
	}
}

// workerEnter / workerExit track the live worker gauge.
func (b *batchSpan) workerEnter() {
	if b != nil {
		b.o.BatchWorkers.Inc()
	}
}

func (b *batchSpan) workerExit() {
	if b != nil {
		b.o.BatchWorkers.Dec()
	}
}

// item records one processed pair: queue wait is measured from batch start
// to pickup (it grows along the queue and exposes worker starvation), busy
// is the construction time itself.
func (b *batchSpan) item(pickup time.Time, busy time.Duration) {
	b.o.BatchQueueWait.ObserveDuration(pickup.Sub(b.start))
	b.o.BatchBusyNanos.Add(int64(busy))
	b.o.BatchItems.Inc()
}
