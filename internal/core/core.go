// Package core implements the paper's primary contribution: an algorithm
// that constructs, between any two distinct nodes u and v of a hierarchical
// hypercube HHC_n (n = 2^m + m), the maximum possible number m+1 of
// pairwise node-disjoint paths — a "container" of width equal to the
// network's connectivity — in time polynomial in the address length n and
// wholly independent of the 2^n network size.
//
// # Construction overview
//
// Write u = (a, α), v = (b, β), D = a⊕b.
//
// Same son-cube (a = b): the m disjoint paths of the classical hypercube
// rotation/detour construction connect α and β inside the m-cube S_a, and
// one extra path leaves u through its external edge, crosses the three
// neighboring son-cubes S_{a⊕e_α}, S_{a⊕e_α⊕e_β}, S_{a⊕e_β}, and re-enters
// S_a exactly at v — it meets S_a only at the two endpoints.
//
// Different son-cubes (a ≠ b): m+1 node-disjoint "super-paths" from a to b
// are chosen in the 2^m-cube of son-cube addresses, as rotations of one
// cyclic order of D plus detours through dimensions outside D. Because node
// u has exactly m+1 incident edges — m local ones and a single external edge
// that crosses super-dimension dec(α) — exactly one chosen super-path must
// begin with dimension dec(α), and symmetrically exactly one must end with
// dec(β). The remaining m super-paths leave S_a at the m distinct processors
// named by their first dimensions; a fan (m vertex-disjoint paths from α to
// those processors inside the m-cube S_a, computed exactly by min-cost flow
// on the 2·2^m-vertex split graph) connects u to all of them without
// collisions, and a mirrored fan gathers the arrivals into v inside S_b.
// Distinct super-paths traverse disjoint sets of intermediate son-cubes, so
// inside those cubes a greedy bit-fixing walk between the entry and exit
// processors suffices.
//
// Every family this package returns is checked by tests against the
// definitionally-safe VerifyDisjoint, exhaustively over all node pairs for
// small m and against the max-flow Menger baseline for larger m.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hhc"
	"repro/internal/hypercube"
	"repro/internal/obs"
)

// ErrSameNode is returned when asked to connect a node to itself.
var ErrSameNode = errors.New("core: source and destination coincide")

// OrderStrategy selects the cyclic order of differing super-dimensions used
// by the rotation family. All strategies yield valid disjoint families; they
// differ only in the local-walk lengths inside pass-through son-cubes
// (ablated by experiment E8).
type OrderStrategy int

const (
	// OrderAscending uses the differing dimensions in increasing index
	// order. Simplest; the worst local walks.
	OrderAscending OrderStrategy = iota
	// OrderGray sorts the differing dimensions along the reflected Gray
	// cycle of Q_m, so consecutive processors in each rotation tend to be
	// close in the son-cube.
	OrderGray
	// OrderNearest chains the dimensions greedily by Hamming proximity,
	// starting from the dimension nearest to the source processor α.
	OrderNearest
)

// String names the strategy.
func (s OrderStrategy) String() string {
	switch s {
	case OrderAscending:
		return "ascending"
	case OrderGray:
		return "gray"
	case OrderNearest:
		return "nearest"
	default:
		return fmt.Sprintf("OrderStrategy(%d)", int(s))
	}
}

// DetourStrategy selects which dimensions outside D are preferred when the
// container needs detour super-paths (d < m+1). Like OrderStrategy it never
// affects correctness, only path lengths.
type DetourStrategy int

const (
	// DetourAscending uses the smallest available outside dimensions.
	DetourAscending DetourStrategy = iota
	// DetourNearest prefers outside dimensions whose processor label is
	// Hamming-close to the endpoints' processors, shortening the detour's
	// first and last son-cube walks.
	DetourNearest
)

// String names the strategy.
func (s DetourStrategy) String() string {
	switch s {
	case DetourAscending:
		return "det-ascending"
	case DetourNearest:
		return "det-nearest"
	default:
		return fmt.Sprintf("DetourStrategy(%d)", int(s))
	}
}

// Options tunes the construction.
type Options struct {
	// Order picks the cyclic order strategy. Zero value = OrderAscending.
	Order OrderStrategy
	// Detour picks the detour-dimension preference. Zero value =
	// DetourAscending.
	Detour DetourStrategy
	// ConfineDetours, when non-zero, restricts the freely-chosen detour
	// dimensions to the given bit mask (the dimensions of a partition, say,
	// so the container borrows as little as possible from outside it). The
	// mandatory external-port crossings dec(α)/dec(β) are exempt — node
	// ports are physical. ErrCannotConfine is returned when the mask leaves
	// too few candidates for full width.
	ConfineDetours uint64
}

// ErrCannotConfine is returned when ConfineDetours leaves fewer than m+1
// candidate super-paths.
var ErrCannotConfine = errors.New("core: detour mask leaves too few disjoint super-paths")

// DisjointPaths constructs m+1 pairwise node-disjoint paths between u and v
// with default options. The first path is not guaranteed shortest; the
// family as a whole matches the network's connectivity, which is the
// maximum achievable by Menger's theorem.
func DisjointPaths(g *hhc.Graph, u, v hhc.Node) ([][]hhc.Node, error) {
	return DisjointPathsOpt(g, u, v, Options{})
}

// DisjointPathsK returns the k shortest paths of the full container,
// for callers that need less redundancy than the maximum width m+1
// (1 <= k <= m+1). The returned family is still pairwise node-disjoint.
func DisjointPathsK(g *hhc.Graph, u, v hhc.Node, k int) ([][]hhc.Node, error) {
	if k < 1 || k > g.Degree() {
		return nil, fmt.Errorf("core: width %d out of range [1,%d]", k, g.Degree())
	}
	paths, err := DisjointPaths(g, u, v)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(paths, func(i, j int) bool { return len(paths[i]) < len(paths[j]) })
	return paths[:k], nil
}

// DisjointPathsOpt is DisjointPaths with explicit options.
func DisjointPathsOpt(g *hhc.Graph, u, v hhc.Node, opt Options) ([][]hhc.Node, error) {
	if !g.Contains(u) || !g.Contains(v) {
		return nil, fmt.Errorf("core: invalid node for m=%d: %s / %s", g.M(), g.FormatNode(u), g.FormatNode(v))
	}
	if u == v {
		return nil, ErrSameNode
	}
	o := observer.Load()
	if u.X == v.X {
		return sameCubePaths(g, u, v, o)
	}
	return crossCubePaths(g, u, v, opt, o)
}

// sameCubePaths handles u = (a, α), v = (a, β), α ≠ β. The observed
// variant lives in its own function so the uninstrumented body stays small
// (no defer, no cold instrumentation code diluting the hot layout).
func sameCubePaths(g *hhc.Graph, u, v hhc.Node, o *Observer) ([][]hhc.Node, error) {
	if o != nil {
		return sameCubePathsObserved(g, u, v, o)
	}
	m := g.M()
	inner, err := hypercube.DisjointPaths(m, uint64(u.Y), uint64(v.Y), m)
	if err != nil {
		return nil, fmt.Errorf("core: son-cube family: %w", err)
	}
	paths := make([][]hhc.Node, 0, m+1)
	for _, p := range inner {
		paths = append(paths, liftLocal(u.X, p))
	}
	paths = append(paths, outsidePath(g, u, v))
	return paths, nil
}

// sameCubePathsObserved wraps the plain construction in a span and the
// same-cube latency histogram.
func sameCubePathsObserved(g *hhc.Graph, u, v hhc.Node, o *Observer) ([][]hhc.Node, error) {
	done := o.startPhase("construct", o.SameCube,
		obs.String("kind", "same-cube"),
		obs.String("u", g.FormatNode(u)), obs.String("v", g.FormatNode(v)))
	defer done()
	paths, err := sameCubePaths(g, u, v, nil)
	if err != nil {
		o.Errors.Inc()
	}
	return paths, err
}

// liftLocal embeds a Q_m vertex path into son-cube S_x.
func liftLocal(x uint64, p []uint64) []hhc.Node {
	out := make([]hhc.Node, len(p))
	for i, y := range p {
		out[i] = hhc.Node{X: x, Y: uint8(y)}
	}
	return out
}

// outsidePath builds the single path between same-cube endpoints that stays
// outside S_a except for u and v themselves: it crosses super-dimensions
// α, β, α, β, visiting S_{a⊕e_α}, S_{a⊕e_α⊕e_β} and S_{a⊕e_β}.
func outsidePath(g *hhc.Graph, u, v hhc.Node) []hhc.Node {
	α, β := uint64(u.Y), uint64(v.Y)
	path := []hhc.Node{u}
	x, y := u.X, α
	hop := func(dim uint64) {
		// Walk to processor dim inside the current cube, then cross.
		for _, w := range hypercube.BitFixPath(y, dim)[1:] {
			path = append(path, hhc.Node{X: x, Y: uint8(w)})
		}
		y = dim
		x ^= 1 << uint(dim)
		path = append(path, hhc.Node{X: x, Y: uint8(y)})
	}
	hop(α)
	hop(β)
	hop(α)
	hop(β)
	return path
}

// crossCubePaths handles u = (a, α), v = (b, β) with a ≠ b. With no
// observer installed this is exactly the original construction; the
// per-phase instrumented variant is a separate function so the hot path
// pays one branch and no extra code in its body.
func crossCubePaths(g *hhc.Graph, u, v hhc.Node, opt Options, o *Observer) ([][]hhc.Node, error) {
	if o != nil {
		return crossCubePathsObserved(g, u, v, opt, o)
	}
	m, t := g.M(), g.T()
	d := u.X ^ v.X
	order := cyclicOrder(d, uint64(u.Y), opt.Order)
	pref := detourPreference(t, uint64(u.Y), uint64(v.Y), opt.Detour, opt.ConfineDetours)
	seqs, err := selectSupers(t, m+1, d, order, int(u.Y), int(v.Y), pref)
	if err != nil {
		return nil, confineErr(opt, err)
	}
	return realize(g, u, v, seqs)
}

// crossCubePathsObserved is crossCubePaths with each phase timed into its
// histogram and traced as a span.
func crossCubePathsObserved(g *hhc.Graph, u, v hhc.Node, opt Options, o *Observer) ([][]hhc.Node, error) {
	m, t := g.M(), g.T()
	d := u.X ^ v.X

	total := o.startPhase("construct", o.CrossCube,
		obs.String("kind", "cross-cube"),
		obs.String("u", g.FormatNode(u)), obs.String("v", g.FormatNode(v)))
	defer total()

	done := o.startPhase("derive", o.Derive)
	order := cyclicOrder(d, uint64(u.Y), opt.Order)
	pref := detourPreference(t, uint64(u.Y), uint64(v.Y), opt.Detour, opt.ConfineDetours)
	done()

	done = o.startPhase("select", o.Select)
	seqs, err := selectSupers(t, m+1, d, order, int(u.Y), int(v.Y), pref)
	done()
	if err != nil {
		o.Errors.Inc()
		return nil, confineErr(opt, err)
	}

	done = o.startPhase("realize", o.Realize)
	paths, err := realize(g, u, v, seqs)
	done()
	if err != nil {
		o.Errors.Inc()
	}
	return paths, err
}

// confineErr tags selection failures of confined requests with
// ErrCannotConfine so callers can distinguish "mask too tight" from bugs.
func confineErr(opt Options, err error) error {
	if opt.ConfineDetours != 0 {
		return fmt.Errorf("%w: %w", ErrCannotConfine, err)
	}
	return err
}

// detourPreference orders the candidate detour dimensions by the strategy;
// selectSupers tries outside-D detours in this order. A non-zero mask
// restricts the candidates.
func detourPreference(t int, alpha, beta uint64, strategy DetourStrategy, mask uint64) []int {
	pref := make([]int, 0, t)
	for i := 0; i < t; i++ {
		if mask == 0 || mask&(1<<uint(i)) != 0 {
			pref = append(pref, i)
		}
	}
	if strategy == DetourNearest {
		sort.SliceStable(pref, func(i, j int) bool {
			ci := hypercube.Hamming(uint64(pref[i]), alpha) + hypercube.Hamming(uint64(pref[i]), beta)
			cj := hypercube.Hamming(uint64(pref[j]), alpha) + hypercube.Hamming(uint64(pref[j]), beta)
			return ci < cj
		})
	}
	return pref
}

// cyclicOrder arranges the differing super-dimensions according to the
// strategy. The result is one fixed cyclic order shared by every rotation,
// which is what guarantees pairwise disjointness of the rotation family.
func cyclicOrder(mask uint64, alpha uint64, strategy OrderStrategy) []int {
	dims := hypercube.Dims(mask)
	switch strategy {
	case OrderGray:
		sort.Slice(dims, func(i, j int) bool {
			return hypercube.GrayRank(uint64(dims[i])) < hypercube.GrayRank(uint64(dims[j]))
		})
	case OrderNearest:
		ordered := make([]int, 0, len(dims))
		used := make([]bool, len(dims))
		cur := alpha
		for len(ordered) < len(dims) {
			best, bestD := -1, 1<<30
			for i, dim := range dims {
				if used[i] {
					continue
				}
				if h := hypercube.Hamming(cur, uint64(dim)); h < bestD {
					best, bestD = i, h
				}
			}
			used[best] = true
			ordered = append(ordered, dims[best])
			cur = uint64(dims[best])
		}
		dims = ordered
	}
	return dims
}
