package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hhc"
)

// Batch construction: the per-pair work is small (tens of microseconds) but
// evaluation workloads construct containers for thousands of pairs —
// embarrassingly parallel, read-only over the topology handle. BatchResult
// keeps per-pair errors so one bad request never poisons a sweep.

// Pair is a batch request.
type Pair struct {
	U, V hhc.Node
}

// BatchResult is one batch outcome.
type BatchResult struct {
	Pair  Pair
	Paths [][]hhc.Node
	Err   error
}

// Constructor is the signature shared by DisjointPathsOpt and by memoizing
// front-ends (internal/cache): anything that produces an (m+1)-wide
// container for a pair. Batch helpers accept one so callers can swap the
// direct construction for a cached one without a dependency cycle.
type Constructor func(g *hhc.Graph, u, v hhc.Node, opt Options) ([][]hhc.Node, error)

// DisjointPathsBatch constructs containers for every pair concurrently
// using up to workers goroutines (workers <= 0 selects GOMAXPROCS).
// Results are index-aligned with pairs.
func DisjointPathsBatch(g *hhc.Graph, pairs []Pair, opt Options, workers int) []BatchResult {
	return DisjointPathsBatchFunc(g, pairs, opt, workers, DisjointPathsOpt)
}

// DisjointPathsBatchFunc is DisjointPathsBatch with an explicit constructor;
// construct must be safe for concurrent use.
func DisjointPathsBatchFunc(g *hhc.Graph, pairs []Pair, opt Options, workers int, construct Constructor) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	results := make([]BatchResult, len(pairs))
	if len(pairs) == 0 {
		return results
	}
	b := observer.Load().startBatch(len(pairs), workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			b.workerEnter()
			defer b.workerExit()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				p := pairs[i]
				if b == nil {
					paths, err := construct(g, p.U, p.V, opt)
					results[i] = BatchResult{Pair: p, Paths: paths, Err: err}
					continue
				}
				pickup := time.Now()
				paths, err := construct(g, p.U, p.V, opt)
				b.item(pickup, time.Since(pickup))
				results[i] = BatchResult{Pair: p, Paths: paths, Err: err}
			}
		}()
	}
	wg.Wait()
	b.end()
	return results
}

// BatchVerify verifies every successful batch result and returns the first
// failure, if any. Intended for harnesses and tests; the construction is
// deterministic, so production callers can skip it.
func BatchVerify(g *hhc.Graph, results []BatchResult) error {
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		if err := VerifyContainer(g, r.Pair.U, r.Pair.V, r.Paths); err != nil {
			return fmt.Errorf("core: batch item %d (%s -> %s): %w", i, g.FormatNode(r.Pair.U), g.FormatNode(r.Pair.V), err)
		}
	}
	return nil
}
