package core

import (
	"fmt"

	"repro/internal/hhc"
	"repro/internal/hypercube"
)

// VerifyDisjoint checks that every path runs from u to v through valid
// adjacent nodes without repeating a vertex, and that the paths pairwise
// share no vertex besides u and v. It runs in time linear in the total path
// length and is the definitional ground truth the construction is tested
// against.
func VerifyDisjoint(g *hhc.Graph, u, v hhc.Node, paths [][]hhc.Node) error {
	if o := observer.Load(); o != nil {
		done := o.startPhase("verify", o.Verify)
		err := verifyDisjoint(g, u, v, paths)
		done()
		return err
	}
	return verifyDisjoint(g, u, v, paths)
}

func verifyDisjoint(g *hhc.Graph, u, v hhc.Node, paths [][]hhc.Node) error {
	seen := make(map[hhc.Node]int)
	for pi, p := range paths {
		if err := g.VerifyPath(u, v, p); err != nil {
			return fmt.Errorf("path %d: %w", pi, err)
		}
		for _, w := range p[1 : len(p)-1] {
			if prev, ok := seen[w]; ok {
				return fmt.Errorf("core: paths %d and %d share internal vertex %s", prev, pi, g.FormatNode(w))
			}
			seen[w] = pi
		}
	}
	return nil
}

// VerifyContainer additionally demands the full container width m+1.
func VerifyContainer(g *hhc.Graph, u, v hhc.Node, paths [][]hhc.Node) error {
	if len(paths) != g.Degree() {
		return fmt.Errorf("core: container has %d paths, want %d", len(paths), g.Degree())
	}
	return VerifyDisjoint(g, u, v, paths)
}

// MaxLenBound returns the analytic upper bound on the length of any path
// the construction can produce for the pair (u, v). It is deliberately
// loose (the fan segments are bounded by the trivial simple-path bound
// 2^m − 1); experiment E2 contrasts it with measured maxima.
func MaxLenBound(g *hhc.Graph, u, v hhc.Node) int {
	m := g.M()
	if u.X == v.X {
		h := hypercube.Hamming(uint64(u.Y), uint64(v.Y))
		// Inside paths: h+2; outside path: 4 external hops + 3 local walks.
		out := 3*h + 4
		if in := h + 2; in > out {
			out = in
		}
		return out
	}
	d := hypercube.Hamming(u.X, v.X)
	fan := 1<<uint(m) - 1
	return (d + 2) + (d+1)*m + 2*fan
}

// TotalLength sums the path lengths (in edges) of a family.
func TotalLength(paths [][]hhc.Node) int {
	total := 0
	for _, p := range paths {
		total += len(p) - 1
	}
	return total
}

// MaxLength returns the longest path length (in edges) of a family.
func MaxLength(paths [][]hhc.Node) int {
	longest := 0
	for _, p := range paths {
		if l := len(p) - 1; l > longest {
			longest = l
		}
	}
	return longest
}
