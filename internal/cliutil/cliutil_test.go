package cliutil

import (
	"strings"
	"testing"
)

func TestNoTrailingArgs(t *testing.T) {
	if err := NoTrailingArgs(nil); err != nil {
		t.Errorf("nil args rejected: %v", err)
	}
	if err := NoTrailingArgs([]string{}); err != nil {
		t.Errorf("empty args rejected: %v", err)
	}
	err := NoTrailingArgs([]string{"stray", "extra"})
	if err == nil {
		t.Fatal("trailing args accepted")
	}
	if !strings.Contains(err.Error(), `"stray extra"`) {
		t.Errorf("error does not name the offenders: %v", err)
	}
}

func TestValidateM(t *testing.T) {
	for _, m := range []int{1, 3, 6} {
		if err := ValidateM(m); err != nil {
			t.Errorf("m=%d rejected: %v", m, err)
		}
	}
	for _, m := range []int{0, -1, 7, 99} {
		err := ValidateM(m)
		if err == nil {
			t.Errorf("m=%d accepted", m)
			continue
		}
		if !strings.Contains(err.Error(), "1..6") {
			t.Errorf("m=%d: error not actionable: %v", m, err)
		}
	}
}
