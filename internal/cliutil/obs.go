package cliutil

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Obs is the shared observability wiring of the cmd/ binaries: the
// -metrics and -trace flags, the registry and tracer behind them, and the
// end-of-run dump. Usage pattern in every main:
//
//	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
//	flag.Parse()
//	obsf.Activate()                  // after parse, before work
//	err := run(...)
//	err = errors.Join(err, obsf.Close(os.Stdout))
//
// With neither flag given (and Force unset) the whole layer stays off:
// Activate is a no-op, the construction hot path keeps its uninstrumented
// branch, and Close does nothing.
type Obs struct {
	// MetricsPath is the -metrics value: a file to write the Prometheus
	// text dump to on exit, or "-" for stdout.
	MetricsPath string
	// TracePath is the -trace value: a file that receives every completed
	// span as one JSON line, streamed live, or "-" for stderr.
	TracePath string
	// ListenAddr is the -listen value (see RegisterListenFlag): an address
	// for the live debug HTTP server. A non-empty value enables the layer.
	ListenAddr string
	// Force activates the layer even without file sinks — set it before
	// Activate when another consumer (an HTTP listener) needs the registry.
	Force bool

	// Registry and Tracer are non-nil after a successful Activate that
	// found the layer enabled; nil otherwise.
	Registry *obs.Registry
	Tracer   *obs.Tracer
	// Requests is the per-request flight recorder, non-nil after
	// EnableRequests; StartListener serves it as /debug/requests.
	Requests *obs.RequestTracer
	// Series is the windowed time-series ring behind /debug/series,
	// non-nil after StartListener on an enabled layer. It samples the
	// registry once per obs.DefaultSeriesInterval until Close.
	Series *obs.SeriesRing

	traceFile *os.File
	srv       *http.Server
	extra     []extraHandler
}

// extraHandler is one binary-specific debug endpoint queued for the
// -listen mux (hhcd's /debug/cluster, for example).
type extraHandler struct {
	pattern string
	h       http.Handler
}

// Handle queues a binary-specific handler for the -listen debug mux.
// Call between Activate and StartListener; a no-op (the handler is never
// served) when -listen was not given.
func (o *Obs) Handle(pattern string, h http.Handler) {
	o.extra = append(o.extra, extraHandler{pattern: pattern, h: h})
}

// RegisterObsFlags registers -metrics and -trace on fs and returns the
// holder the binary activates after parsing.
func RegisterObsFlags(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.MetricsPath, "metrics", "",
		"write a metrics dump (Prometheus text format) to this file on exit; '-' = stdout")
	fs.StringVar(&o.TracePath, "trace", "",
		"stream construction-phase spans as JSON Lines to this file; '-' = stderr")
	return o
}

// RegisterListenFlag registers -listen on fs for the long-running binaries
// (hhcsim, hhcd) that serve their registry live over HTTP. A non-empty
// -listen enables the observability layer even without file sinks; call
// StartListener after Activate to bind and serve.
func (o *Obs) RegisterListenFlag(fs *flag.FlagSet) {
	fs.StringVar(&o.ListenAddr, "listen", "",
		"serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :6060)")
}

// Enabled reports whether any observability sink was requested.
func (o *Obs) Enabled() bool {
	return o.MetricsPath != "" || o.TracePath != "" || o.ListenAddr != "" || o.Force
}

// Activate builds the registry and tracer and instruments the container
// construction layer process-wide. A no-op when nothing was requested.
func (o *Obs) Activate() error {
	if !o.Enabled() {
		return nil
	}
	o.Registry = obs.NewRegistry()
	o.Tracer = obs.NewTracer(0)
	switch o.TracePath {
	case "":
	case "-":
		o.Tracer.StreamTo(os.Stderr)
	default:
		f, err := os.Create(o.TracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		o.traceFile = f
		o.Tracer.StreamTo(f)
	}
	obs.RegisterRuntime(o.Registry)
	obs.RegisterSelf(o.Registry, o.Tracer, nil)
	core.SetObserver(core.NewObserver(o.Registry, o.Tracer))
	return nil
}

// EnableRequests attaches a flight recorder for request-serving binaries:
// span trees of the most interesting requests, retained for
// /debug/requests and mirrored onto the -trace stream. slow force-retains
// requests at least that long (0 disables the slow bucket). Call between
// Activate and StartListener; a no-op returning nil when the layer is off.
func (o *Obs) EnableRequests(slow time.Duration) *obs.RequestTracer {
	if o.Registry == nil {
		return nil
	}
	o.Requests = obs.NewRequestTracer(0)
	o.Requests.SetSlowThreshold(slow)
	o.Requests.Mirror(o.Tracer)
	obs.RegisterSelf(o.Registry, nil, o.Requests)
	return o.Requests
}

// StartListener serves the registry's debug mux (/metrics, /debug/vars,
// /debug/pprof) on the -listen address in a background goroutine and
// prints the resolved URL to stderr under the tool's name. A no-op
// returning "" when -listen was not given. Close shuts the server down.
func (o *Obs) StartListener(name string) (string, error) {
	if o.ListenAddr == "" {
		return "", nil
	}
	mux := obs.Mux(o.Registry)
	extra := ", /debug/series"
	if o.Requests != nil {
		mux.Handle("/debug/requests", o.Requests.Handler())
		extra += ", /debug/requests"
	}
	// The series ring only matters while something can scrape it, so it is
	// created (and its sampler started) here rather than in Activate:
	// short-lived batch runs with just -metrics/-trace skip the goroutine.
	o.Series = obs.NewSeriesRing(o.Registry, obs.DefaultSeriesInterval, obs.DefaultSeriesCapacity)
	o.Series.Start()
	mux.Handle("/debug/series", o.Series.Handler())
	for _, e := range o.extra {
		mux.Handle(e.pattern, e.h)
		extra += ", " + e.pattern
	}
	ln, err := net.Listen("tcp", o.ListenAddr)
	if err != nil {
		o.Series.Stop()
		o.Series = nil
		return "", fmt.Errorf("-listen %s: %w", o.ListenAddr, err)
	}
	o.srv = &http.Server{Handler: mux}
	//hhc:detached reaped by o.srv.Close() in Obs.Close; Serve returns when the listener dies
	go func() { _ = o.srv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "%s: serving http://%s/metrics (also /debug/vars, /debug/pprof/%s)\n", name, addr, extra)
	return addr, nil
}

// Close uninstalls the instrumentation, stops the -listen server, writes
// the metrics dump, and closes the trace stream. stdout is the writer "-"
// dumps to (the tests pass a buffer). Safe to call when Activate never ran.
func (o *Obs) Close(stdout io.Writer) error {
	if o.Registry == nil {
		return nil
	}
	if o.srv != nil {
		_ = o.srv.Close()
		o.srv = nil
	}
	if o.Series != nil {
		o.Series.Stop()
	}
	core.SetObserver(nil)
	var firstErr error
	switch o.MetricsPath {
	case "":
	case "-":
		firstErr = o.Registry.WritePrometheus(stdout)
	default:
		f, err := os.Create(o.MetricsPath)
		if err == nil {
			err = o.Registry.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			firstErr = fmt.Errorf("-metrics: %w", err)
		}
	}
	// Detach the stream before closing its sink: StreamTo(nil) blocks until
	// the drain goroutine has written and flushed every queued span, so a
	// -trace file is complete when the process exits.
	o.Tracer.StreamTo(nil)
	if o.traceFile != nil {
		if err := o.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-trace: %w", err)
		}
		o.traceFile = nil
	}
	return firstErr
}

// ServeObs mounts reg's debug mux (/metrics, /debug/vars, /debug/pprof)
// on addr and serves it in a background goroutine. It returns once the
// listener is bound, so callers can print the resolved address (addr may
// use port 0) before starting work.
func ServeObs(addr string, reg *obs.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: obs.Mux(reg)}
	//hhc:detached caller owns srv and reaps the goroutine via srv.Close; Serve returns when the listener dies
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
