// Package cliutil holds the small argument-validation helpers shared by
// the cmd/ binaries, so every tool rejects malformed invocations the same
// way instead of silently ignoring them.
package cliutil

import (
	"fmt"
	"strings"

	"repro/internal/hhc"
)

// NoTrailingArgs rejects unexpected positional arguments left over after
// flag parsing. Every tool in cmd/ is flag-driven; a stray positional
// argument is almost always a typo (a missing "-u", a flag after an
// operand) that would otherwise be silently ignored.
func NoTrailingArgs(args []string) error {
	if len(args) == 0 {
		return nil
	}
	return fmt.Errorf("unexpected argument(s) %q: all inputs are flags, see -h", strings.Join(args, " "))
}

// ValidateM checks the son-cube dimension flag up front, so the user gets
// an actionable message naming the flag and the supported range instead of
// a failure from deep inside graph construction.
func ValidateM(m int) error {
	if m < hhc.MinM || m > hhc.MaxM {
		return fmt.Errorf("-m %d out of range: the son-cube dimension must be %d..%d (HHC_%d..HHC_%d)",
			m, hhc.MinM, hhc.MaxM, 1<<uint(hhc.MinM)+hhc.MinM, 1<<uint(hhc.MaxM)+hhc.MaxM)
	}
	return nil
}
