package cliutil

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hhc"
)

func TestObsDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Enabled() {
		t.Error("enabled with no flags")
	}
	if err := o.Activate(); err != nil {
		t.Fatal(err)
	}
	if o.Registry != nil || o.Tracer != nil {
		t.Error("Activate built sinks while disabled")
	}
	if err := o.Close(os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestObsMetricsAndTraceFiles(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	tracePath := filepath.Join(dir, "spans.jsonl")

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-metrics", metricsPath, "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	if err := o.Activate(); err != nil {
		t.Fatal(err)
	}
	defer o.Close(nil)
	if core.CurrentObserver() == nil {
		t.Fatal("Activate did not install the core observer")
	}

	// Drive one real construction through the instrumented layer.
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DisjointPaths(g, hhc.Node{X: 0, Y: 0}, hhc.Node{X: 0xff, Y: 3}); err != nil {
		t.Fatal(err)
	}

	if err := o.Close(nil); err != nil {
		t.Fatal(err)
	}
	if core.CurrentObserver() != nil {
		t.Error("Close left the observer installed")
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "core_construct_seconds") {
		t.Errorf("metrics dump missing construction histogram:\n%s", prom)
	}
	spans, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(spans), `"name":"construct"`) {
		t.Errorf("trace file missing construct span:\n%s", spans)
	}
}

func TestObsMetricsStdout(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObsFlags(fs)
	if err := fs.Parse([]string{"-metrics", "-"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Activate(); err != nil {
		t.Fatal(err)
	}
	o.Registry.Counter("demo_total", "").Inc()
	var buf bytes.Buffer
	if err := o.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo_total 1") {
		t.Errorf("stdout dump:\n%s", buf.String())
	}
}

func TestStartListenerServesSeries(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObsFlags(fs)
	o.ListenAddr = "127.0.0.1:0"
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := o.Activate(); err != nil {
		t.Fatal(err)
	}
	defer o.Close(nil)
	o.EnableRequests(0)

	addr, err := o.StartListener("test")
	if err != nil {
		t.Fatal(err)
	}
	if o.Series == nil {
		t.Fatal("StartListener did not build the series ring")
	}
	for _, path := range []string{"/debug/series", "/debug/series?format=table", "/debug/requests"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	// The self-telemetry satellite: activation registers obs_* series so
	// trace loss and recorder retention are visible on /metrics.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"obs_trace_dropped_total",
		"obs_requests_recorded_total",
		`obs_requests_retained{bucket="slowest"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func TestServeObs(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObsFlags(fs)
	o.Force = true
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := o.Activate(); err != nil {
		t.Fatal(err)
	}
	defer o.Close(nil)
	o.Registry.Counter("served_total", "").Add(9)

	srv, addr, err := ServeObs("127.0.0.1:0", o.Registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "served_total 9") {
		t.Errorf("/metrics over HTTP:\n%s", buf.String())
	}
}
