// Package repro is a production-quality Go reproduction of "Node-disjoint
// paths in hierarchical hypercube networks" (IPPS/IPDPS 2006): a complete
// implementation of the hierarchical hypercube interconnection network
// HHC_n together with a constructive algorithm that builds the maximum
// number m+1 of node-disjoint paths between any two nodes, in time
// polynomial in the address length and independent of the 2^n network size.
//
// The repository layout:
//
//	internal/hypercube  — the Q_k substrate: Gray codes, rotation/detour
//	                      disjoint paths, fans, set-visiting walks
//	internal/hhc        — HHC topology, addressing, provably shortest routing
//	internal/core       — the paper's contribution: the (m+1)-container
//	internal/flow       — max-flow / min-cost-flow baseline (Menger)
//	internal/graph      — implicit-graph BFS/diameter ground truth
//	internal/netsim     — discrete-event store-and-forward simulator
//	internal/exp        — the evaluation harness (tables/figures E1..E22)
//	cmd/…               — hhcinfo, hhcpaths, hhcbench, hhcsim, hhcbcast,
//	                      hhcviz, hhcsched
//	examples/…          — runnable demonstrations of the public API
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for measured results.
//
// The Benchmark functions in bench_test.go regenerate each experiment:
//
//	go test -bench=E3 -benchmem .
package repro
