package repro

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/exp"
)

// TestDocsCoverEveryExperiment keeps the documentation honest: every
// experiment in the code registry must appear in DESIGN.md's experiment
// index and in EXPERIMENTS.md, and the docs must not reference experiments
// that do not exist.
func TestDocsCoverEveryExperiment(t *testing.T) {
	registry := map[string]bool{}
	for _, e := range exp.All() {
		registry[e.ID] = true
	}
	idPattern := regexp.MustCompile(`\bE([0-9]+)\b`)
	for _, doc := range []string{"DESIGN.md", "EXPERIMENTS.md"} {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		text := string(raw)
		mentioned := map[string]bool{}
		for _, m := range idPattern.FindAllStringSubmatch(text, -1) {
			mentioned["E"+m[1]] = true
		}
		for id := range registry {
			if !mentioned[id] {
				t.Errorf("%s does not mention experiment %s", doc, id)
			}
		}
		for id := range mentioned {
			if !registry[id] {
				t.Errorf("%s references non-existent experiment %s", doc, id)
			}
		}
	}
}

// TestDocsMentionEveryTool: the README's tool table must cover every binary
// under cmd/.
func TestDocsMentionEveryTool(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(readme, e.Name()) {
			t.Errorf("README.md does not mention cmd/%s", e.Name())
		}
	}
}

// TestDocsMentionEveryExample: README must list every runnable example.
func TestDocsMentionEveryExample(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(readme, fmt.Sprintf("examples/%s", e.Name())) {
			t.Errorf("README.md does not mention examples/%s", e.Name())
		}
	}
}
