package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestToolFlagHygiene builds every binary under cmd/ and checks the shared
// CLI contract end to end, as a user would hit it:
//
//   - a trailing positional argument is rejected with an actionable error
//     and a non-zero exit, never silently ignored;
//   - the observability flags -metrics and -trace are registered (the
//     cliutil.RegisterObsFlags wiring is in place).
//
// cmd/hhclint is exempt from both checks by design: it is a build tool,
// not a workload — it takes package patterns as positional arguments
// (like go vet) and deliberately has no observability layer.
func TestToolFlagHygiene(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every cmd/ binary")
	}
	exempt := map[string]string{
		"hhclint": "takes positional package patterns; no obs flags by design",
		"hhcobs":  "takes positional input files; reads telemetry rather than emitting it",
	}

	bin := t.TempDir()
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/...").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		tool := e.Name()
		if why, ok := exempt[tool]; ok {
			t.Logf("cmd/%s exempt: %s", tool, why)
			continue
		}
		t.Run(tool, func(t *testing.T) {
			path := filepath.Join(bin, tool)

			// A stray positional argument must fail fast with the shared
			// cliutil message, before any real work starts.
			var stderr strings.Builder
			cmd := exec.Command(path, "stray-operand")
			cmd.Stderr = &stderr
			err := cmd.Run()
			if err == nil {
				t.Errorf("%s accepted a trailing positional argument", tool)
			} else if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("%s did not run: %v", tool, err)
			}
			if !strings.Contains(stderr.String(), "unexpected argument") {
				t.Errorf("%s stderr does not name the stray argument:\n%s", tool, stderr.String())
			}

			// -h usage must list the shared observability flags.
			help, _ := exec.Command(path, "-h").CombinedOutput()
			for _, flag := range []string{"-metrics", "-trace"} {
				if !strings.Contains(string(help), flag) {
					t.Errorf("%s -h does not list %s:\n%s", tool, flag, help)
				}
			}
		})
	}
}
