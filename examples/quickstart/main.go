// Quickstart: build a hierarchical hypercube, route a message, and
// construct the maximum set of node-disjoint paths between two nodes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hhc"
)

func main() {
	// HHC with m=3: son-cubes are 3-cubes of 8 processors, there are 2^8
	// son-cubes, and the network has 2^11 = 2048 nodes of degree 4.
	g, err := hhc.New(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built HHC_%d: 2^%d nodes, degree %d\n", g.N(), g.N(), g.Degree())

	u := hhc.Node{X: 0x00, Y: 0}
	v := hhc.Node{X: 0xA7, Y: 5}

	// One shortest path.
	path, info, err := g.RouteEx(u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshortest path %s -> %s: %d hops (%d external + %d local, exact=%v)\n",
		g.FormatNode(u), g.FormatNode(v), len(path)-1, info.ExternalHops, info.LocalHops, info.Exact)

	// The full container: m+1 = 4 node-disjoint paths, the maximum possible.
	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifyContainer(g, u, v, paths); err != nil {
		log.Fatal(err) // never happens; the family is disjoint by construction
	}
	fmt.Printf("\ncontainer of %d node-disjoint paths (verified):\n", len(paths))
	for i, p := range paths {
		fmt.Printf("  path %d: %2d hops:", i+1, len(p)-1)
		for _, w := range p {
			fmt.Printf(" %s", g.FormatNode(w))
		}
		fmt.Println()
	}
}
