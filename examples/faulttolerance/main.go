// Fault-tolerant routing: with up to m node failures anywhere in the
// network, the (m+1)-path container always has a survivor, so communication
// never needs rediscovery — just fail over to the next precomputed path.
//
// This example plants faults *adversarially on the container's own paths*
// (the worst case) and shows RouteAround still succeeding until every path
// is blocked.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hhc"
)

func main() {
	g, err := hhc.New(3) // degree 4 = container width 4, tolerates any 3 faults
	if err != nil {
		log.Fatal(err)
	}
	u := hhc.Node{X: 0x13, Y: 2}
	v := hhc.Node{X: 0xE4, Y: 6}

	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container %s -> %s: %d disjoint paths, lengths:", g.FormatNode(u), g.FormatNode(v), len(paths))
	for _, p := range paths {
		fmt.Printf(" %d", len(p)-1)
	}
	fmt.Println()

	// Kill the paths one by one, each time with a fault in its middle.
	faults := map[hhc.Node]bool{}
	for round := 0; round < len(paths); round++ {
		victim := paths[round][len(paths[round])/2]
		faults[victim] = true
		fmt.Printf("\nround %d: fault injected at %s (total %d faults)\n",
			round+1, g.FormatNode(victim), len(faults))

		p, err := core.RouteAround(g, u, v, faults)
		switch {
		case errors.Is(err, core.ErrAllPathsFaulty):
			fmt.Printf("  all %d disjoint paths blocked — %d faults exceed the m=%d guarantee\n",
				len(paths), len(faults), g.M())
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  survivor found: %d hops, avoids every fault\n", len(p)-1)
			if len(faults) <= g.M() {
				fmt.Printf("  (guaranteed: %d faults <= m = %d)\n", len(faults), g.M())
			}
		}
	}
}
