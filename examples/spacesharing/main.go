// Space sharing: partition a hierarchical hypercube among jobs with the
// buddy subcube allocator, schedule a queue with EASY backfill, and show
// that each partition is a self-contained sub-machine — containers built
// inside an allocation never leave it.
//
// Run with: go run ./examples/spacesharing
package main

import (
	"fmt"
	"log"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/hhc"
	"repro/internal/sched"
)

func main() {
	g, err := hhc.New(3) // 2^8 son-cubes of 8 processors each
	if err != nil {
		log.Fatal(err)
	}
	a, err := alloc.New(g.T())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: HHC_%d — %d son-cubes to share\n\n", g.N(), 1<<uint(g.T()))

	// Carve out a 2^3-son-cube partition for a job.
	base, err := a.Alloc(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job A gets an order-3 partition at base %#x: cubes %v...\n",
		base, alloc.Cubes(base, 3)[:4])
	fmt.Printf("free cubes left: %d (fragmentation %.2f)\n\n", a.FreeCubes(), a.Fragmentation())

	// A subtlety worth seeing live: rotations of the container only flip
	// the dimensions where the endpoints differ (all inside the
	// partition), but full width m+1 needs detours — and detour
	// dimensions, like the endpoints' own external ports, can cross the
	// partition boundary into the 1-hop halo of neighboring son-cubes.
	// Full-width containers are a whole-machine resource; a partition that
	// must stay self-contained should budget container width accordingly.
	u := hhc.Node{X: base | 0b000, Y: 1}
	v := hhc.Node{X: base | 0b101, Y: 6}
	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifyContainer(g, u, v, paths); err != nil {
		log.Fatal(err)
	}
	inside := map[uint64]bool{}
	for _, c := range alloc.Cubes(base, 3) {
		inside[c] = true
	}
	halo := 0
	confined := 0
	for _, p := range paths {
		out := false
		for _, w := range p {
			if !inside[w.X] {
				out = true
				halo++
			}
		}
		if !out {
			confined++
		}
	}
	fmt.Printf("container %s -> %s: %d disjoint paths; %d fully confined to the partition,\n",
		g.FormatNode(u), g.FormatNode(v), len(paths), confined)
	fmt.Printf("the rest borrow %d nodes from the 1-hop halo (detours across the boundary)\n", halo)

	// core.Options.ConfineDetours makes the trade explicit. For endpoints
	// whose external ports also lie inside the partition (y < 3 here), an
	// order-3 partition offers only 3 usable super-dimensions, so a
	// full-width (m+1 = 4) container cannot be confined — the API says so
	// instead of silently widening.
	u2 := hhc.Node{X: base | 0b000, Y: 1}
	v2 := hhc.Node{X: base | 0b101, Y: 2}
	_, err = core.DisjointPathsOpt(g, u2, v2, core.Options{ConfineDetours: 0b111})
	fmt.Printf("confined full-width request for %s -> %s: %v\n\n",
		g.FormatNode(u2), g.FormatNode(v2), err)

	// Now run a whole queue through the scheduler.
	jobs := []sched.Job{
		{ID: 1, Arrival: 0, Order: 7, Duration: 50}, // half the machine
		{ID: 2, Arrival: 2, Order: 8, Duration: 30}, // whole machine: blocks
		{ID: 3, Arrival: 3, Order: 2, Duration: 8},  // small: should backfill
		{ID: 4, Arrival: 4, Order: 2, Duration: 8},
	}
	for _, policy := range []sched.Policy{sched.FCFS, sched.Backfill} {
		results, m, err := sched.Run(8, jobs, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s mean wait %.1f, makespan %d, starts:", policy, m.MeanWait, m.Makespan)
		for _, r := range results {
			fmt.Printf(" job%d@%d", r.ID, r.Start)
		}
		fmt.Println()
	}
	fmt.Println("\n=> backfill slips the small jobs into the idle half while the full-machine job waits.")
}
