// Ring pipeline: embed a long ring of distinct nodes into the hierarchical
// hypercube (gluing Hamiltonian paths of whole son-cubes along a
// parity-alternating super-walk) and use it as a systolic pipeline,
// measuring the per-stage forwarding pattern.
//
// Run with: go run ./examples/ringpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/hhc"
)

func main() {
	g, err := hhc.New(3) // HHC_11
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HHC_%d supports embedded rings through up to 2^%d son-cubes\n",
		g.N(), g.MaxRingExponent())

	// The largest supported ring: 2^5 son-cubes × 2^3 processors = 256 nodes.
	r := g.MaxRingExponent()
	dims, err := g.RingDims(r)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := g.EmbedRing(0x00, dims)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.VerifyRing(ring); err != nil {
		log.Fatal(err) // never: the construction is verified by the test suite
	}
	local, external := 0, 0
	for i := range ring {
		next := ring[(i+1)%len(ring)]
		if ring[i].X == next.X {
			local++
		} else {
			external++
		}
	}
	fmt.Printf("\nembedded ring: %d nodes over %d son-cubes (every cube fully consumed)\n",
		len(ring), 1<<uint(r))
	fmt.Printf("  local edges     %d\n", local)
	fmt.Printf("  external edges  %d\n", external)
	fmt.Printf("  first stages    %s %s %s %s ...\n",
		g.FormatNode(ring[0]), g.FormatNode(ring[1]), g.FormatNode(ring[2]), g.FormatNode(ring[3]))

	// Pipeline demonstration: a token makes one full revolution; dilation 1
	// means one network hop per pipeline stage, so a revolution takes
	// exactly len(ring) hops.
	hops := 0
	for i := range ring {
		if !g.Adjacent(ring[i], ring[(i+1)%len(ring)]) {
			log.Fatalf("broken ring at stage %d", i)
		}
		hops++
	}
	fmt.Printf("\ntoken revolution: %d hops (dilation 1 — every stage is one link)\n", hops)
}
