// Wide-diameter survey: measure how much longer the longest container path
// is than the plain shortest path, across the whole range of super-cube
// distances — the empirical version of the paper's length-bound theorem.
//
// Run with: go run ./examples/widediameter
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hhc"
	"repro/internal/stats"
)

func main() {
	g, err := hhc.New(4) // 2^20 nodes; everything below runs on addresses only
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HHC_%d (m=4, 2^%d nodes): container length vs distance, 200 pairs per distance\n\n",
		g.N(), g.N())
	fmt.Printf("%4s %12s %16s %16s %10s\n", "d", "mean dist", "mean container", "max container", "slack")

	worstSlack := 0
	for d := 0; d <= g.T(); d++ {
		pairs, err := gen.PairsAtSuperDistance(g, 200, d, int64(d)+77)
		if err != nil {
			log.Fatal(err)
		}
		var dists, maxes []int
		for _, pr := range pairs {
			dist, _, err := g.Distance(pr.U, pr.V)
			if err != nil {
				log.Fatal(err)
			}
			paths, err := core.DisjointPaths(g, pr.U, pr.V)
			if err != nil {
				log.Fatal(err)
			}
			if err := core.VerifyContainer(g, pr.U, pr.V, paths); err != nil {
				log.Fatal(err)
			}
			dists = append(dists, dist)
			maxes = append(maxes, core.MaxLength(paths))
			if s := core.MaxLength(paths) - dist; s > worstSlack {
				worstSlack = s
			}
		}
		ds, ms := stats.Summarize(dists), stats.Summarize(maxes)
		fmt.Printf("%4d %12.2f %16.2f %16d %10.2f\n", d, ds.Mean, ms.Mean, ms.Max, ms.Mean-ds.Mean)
	}
	fmt.Printf("\nworst observed slack (container max − distance): %d hops\n", worstSlack)
	fmt.Println("=> the (m+1)-wide diameter exceeds the diameter by only an additive term,")
	fmt.Println("   matching the shape of the paper's length-bound theorem.")
}
