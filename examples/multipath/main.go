// Parallel multi-path transmission: stripe large messages across the m+1
// node-disjoint paths and watch end-to-end latency drop, using the
// discrete-event store-and-forward simulator.
//
// Run with: go run ./examples/multipath
package main

import (
	"fmt"
	"log"

	"repro/internal/netsim"
)

func main() {
	base := netsim.Config{
		M:               3,
		Flows:           24,
		MessagesPerFlow: 60,
		MessageFlits:    256,
		ArrivalRate:     0.0005,
		Seed:            2006,
	}

	fmt.Println("store-and-forward DES on HHC_11 (m=3), 256-flit messages")
	fmt.Println()
	fmt.Printf("%-14s %12s %12s %14s\n", "mode", "avg latency", "p95 latency", "goodput")
	for _, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe} {
		cfg := base
		cfg.Mode = mode
		res, err := netsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.1f cy %9d cy %8.3f fl/cy\n",
			mode, res.AvgLatency, res.P95Latency, res.Throughput)
	}

	fmt.Println()
	fmt.Println("sweep of message size (unloaded): striping wins once messages dwarf path-length differences")
	fmt.Println()
	fmt.Printf("%8s %16s %16s %9s\n", "flits", "single (cy)", "multi (cy)", "speedup")
	for _, flits := range []int{16, 64, 256, 1024} {
		var lat [2]float64
		for i, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe} {
			cfg := base
			cfg.Mode = mode
			cfg.MessageFlits = flits
			cfg.ArrivalRate = 0.00005
			res, err := netsim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			lat[i] = res.AvgLatency
		}
		fmt.Printf("%8d %16.1f %16.1f %8.2fx\n", flits, lat[0], lat[1], lat[0]/lat[1])
	}
}
