package repro

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/dessim"
	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/hhc"
	"repro/internal/hypercube"
	"repro/internal/netsim"
	"repro/internal/sched"
)

// ---------------------------------------------------------------------------
// One benchmark per evaluation table/figure (E1..E10). Each runs the same
// harness entry that cmd/hhcbench prints, in quick mode so a full
// `go test -bench=.` stays tractable; the rendered full-fidelity outputs
// live in EXPERIMENTS.md.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.Config{Quick: true, Seed: 20060425}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1Properties(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Construct(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Profile(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4Baseline(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5Scaling(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Faults(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7WideDiameter(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Ablation(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Compare(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Netsim(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Measured(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Broadcast(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13Rings(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14Permutation(b *testing.B)  { benchExperiment(b, "E14") }
func BenchmarkE15CrossNetwork(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16Patterns(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17Deadlock(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18Allocation(b *testing.B)   { benchExperiment(b, "E18") }
func BenchmarkE19Scheduling(b *testing.B)   { benchExperiment(b, "E19") }
func BenchmarkE20Adaptive(b *testing.B)     { benchExperiment(b, "E20") }
func BenchmarkE21Containers(b *testing.B)   { benchExperiment(b, "E21") }
func BenchmarkE22Saturation(b *testing.B)   { benchExperiment(b, "E22") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives the experiments are built from.
// ---------------------------------------------------------------------------

// BenchmarkConstruct measures one container construction per iteration, for
// every supported m — the headline O(poly(n)) claim in numbers.
func BenchmarkConstruct(b *testing.B) {
	for m := 1; m <= 6; m++ {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			g, err := hhc.New(m)
			if err != nil {
				b.Fatal(err)
			}
			pairs := gen.Pairs(g, 256, gen.Uniform, int64(m))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := core.DisjointPaths(g, p.U, p.V); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstructStrategies ablates the cyclic-order strategy cost.
func BenchmarkConstructStrategies(b *testing.B) {
	g, err := hhc.New(4)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.Pairs(g, 256, gen.Uniform, 4)
	for _, s := range []core.OrderStrategy{core.OrderAscending, core.OrderGray, core.OrderNearest} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := core.DisjointPathsOpt(g, p.U, p.V, core.Options{Order: s}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoute measures single-path routing (exact DP regime and the
// heuristic regime at m=6 where up to 64 dimensions differ).
func BenchmarkRoute(b *testing.B) {
	for _, m := range []int{3, 4, 6} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			g, err := hhc.New(m)
			if err != nil {
				b.Fatal(err)
			}
			pairs := gen.Pairs(g, 256, gen.Uniform, int64(m))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := g.Route(p.U, p.V); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerify measures the disjointness checker, which is linear in the
// total container length.
func BenchmarkVerify(b *testing.B) {
	g, err := hhc.New(4)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.Pairs(g, 64, gen.Uniform, 9)
	containers := make([][][]hhc.Node, len(pairs))
	for i, p := range pairs {
		paths, err := core.DisjointPaths(g, p.U, p.V)
		if err != nil {
			b.Fatal(err)
		}
		containers[i] = paths
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if err := core.VerifyContainer(g, p.U, p.V, containers[i%len(pairs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFan measures the exact min-cost-flow fan solver inside a son-cube.
func BenchmarkFan(b *testing.B) {
	for _, m := range []int{3, 4, 5, 6} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(m)))
			type inst struct {
				src     uint64
				targets []uint64
			}
			insts := make([]inst, 64)
			for i := range insts {
				src := r.Uint64() & (1<<uint(m) - 1)
				seen := map[uint64]bool{src: true}
				targets := make([]uint64, 0, m)
				for len(targets) < m {
					v := r.Uint64() & (1<<uint(m) - 1)
					if !seen[v] {
						seen[v] = true
						targets = append(targets, v)
					}
				}
				insts[i] = inst{src, targets}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := insts[i%len(insts)]
				if _, err := hypercube.Fan(m, in.src, in.targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlowBaseline measures the generic Menger baseline on the
// materialized network — the cost the constructive algorithm avoids.
func BenchmarkFlowBaseline(b *testing.B) {
	for _, m := range []int{2, 3} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			g, err := hhc.New(m)
			if err != nil {
				b.Fatal(err)
			}
			dg, err := g.Dense()
			if err != nil {
				b.Fatal(err)
			}
			pairs := gen.Pairs(g, 32, gen.Uniform, int64(m))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := flow.VertexDisjointPaths(dg, g.ID(p.U), g.ID(p.V), 0, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSetWalk measures the routing DP at both regimes.
func BenchmarkSetWalk(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{4, 8, 12, 20} {
		n := n
		b.Run(fmt.Sprintf("cities=%d", n), func(b *testing.B) {
			cities := make([]uint64, n)
			seen := map[uint64]bool{}
			for i := 0; i < n; {
				c := r.Uint64() & 0x3F
				if !seen[c] {
					seen[c] = true
					cities[i] = c
					i++
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hypercube.SetWalk(0, 0x3F, cities)
			}
		})
	}
}

// BenchmarkNetsim measures full simulation runs.
func BenchmarkNetsim(b *testing.B) {
	for _, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			cfg := netsim.Config{
				M: 3, Mode: mode, Flows: 16, MessagesPerFlow: 30,
				MessageFlits: 64, ArrivalRate: 0.001, Seed: 3,
			}
			for i := 0; i < b.N; i++ {
				if _, err := netsim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatch measures the parallel batch API's scaling across worker
// counts (one iteration = a 512-pair sweep on the 2^20-node network).
func BenchmarkBatch(b *testing.B) {
	g, err := hhc.New(4)
	if err != nil {
		b.Fatal(err)
	}
	raw := gen.Pairs(g, 512, gen.Uniform, 5)
	pairs := make([]core.Pair, len(raw))
	for i, p := range raw {
		pairs[i] = core.Pair{U: p.U, V: p.V}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := core.DisjointPathsBatch(g, pairs, core.Options{}, workers)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkRingEmbed measures building and verifying the largest supported
// ring per m.
func BenchmarkRingEmbed(b *testing.B) {
	for _, m := range []int{3, 4} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			g, err := hhc.New(m)
			if err != nil {
				b.Fatal(err)
			}
			dims, err := g.RingDims(g.MaxRingExponent())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring, err := g.EmbedRing(0, dims)
				if err != nil {
					b.Fatal(err)
				}
				if err := g.VerifyRing(ring); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHamiltonianPath measures the Havel construction.
func BenchmarkHamiltonianPath(b *testing.B) {
	for _, k := range []int{8, 12, 16} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hypercube.HamiltonianPath(k, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDimOrderRoute measures the distributed router end to end.
func BenchmarkDimOrderRoute(b *testing.B) {
	g, err := hhc.New(4)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.Pairs(g, 256, gen.Uniform, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := g.RouteDimOrder(p.U, p.V); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocator measures buddy alloc/free churn.
func BenchmarkAllocator(b *testing.B) {
	a, err := alloc.New(16)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	var bases []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(bases) > 64 || (len(bases) > 0 && r.Intn(2) == 0) {
			k := r.Intn(len(bases))
			if err := a.Free(bases[k]); err != nil {
				b.Fatal(err)
			}
			bases[k] = bases[len(bases)-1]
			bases = bases[:len(bases)-1]
			continue
		}
		base, err := a.Alloc(r.Intn(6))
		if err == nil {
			bases = append(bases, base)
		}
	}
}

// BenchmarkScheduler measures a 200-job trace under both policies.
func BenchmarkScheduler(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	jobs := make([]sched.Job, 200)
	at := int64(0)
	for i := range jobs {
		at += int64(r.Intn(8))
		jobs[i] = sched.Job{ID: i + 1, Arrival: at, Order: r.Intn(5), Duration: int64(1 + r.Intn(60))}
	}
	for _, p := range []sched.Policy{sched.FCFS, sched.Backfill} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.Run(8, jobs, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeadlockAnalysis measures the all-pairs CDG build + cycle check.
func BenchmarkDeadlockAnalysis(b *testing.B) {
	g, err := hhc.New(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deadlock.AnalyzeRouter(g, g.Route, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDessim measures the raw generic engine on a synthetic workload.
func BenchmarkDessim(b *testing.B) {
	packets := make([]dessim.Packet[int], 0, 1000)
	for i := 0; i < 1000; i++ {
		route := []int{i % 50, 50 + i%30, 80 + i%10, 95}
		packets = append(packets, dessim.Packet[int]{
			Route: route, Flits: 16, Release: int64(i), Msg: i,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dessim.Simulate(packets, len(packets), dessim.StoreAndForward); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteAround measures fault-tolerant route selection.
func BenchmarkRouteAround(b *testing.B) {
	g, err := hhc.New(4)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.Pairs(g, 128, gen.Uniform, 13)
	faultSets := make([]map[hhc.Node]bool, len(pairs))
	for i, p := range pairs {
		faultSets[i] = gen.FaultSet(g, g.M(), []hhc.Node{p.U, p.V}, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(pairs)
		if _, err := core.RouteAround(g, pairs[k].U, pairs[k].V, faultSets[k]); err != nil {
			b.Fatal(err)
		}
	}
}
