package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hhc"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pathsvc"
	"repro/internal/viz"
)

// TestEndToEndContainerPipeline walks the full user journey: topology →
// shortest route → container → verification → fault tolerance → DOT export,
// asserting cross-module consistency at each step.
func TestEndToEndContainerPipeline(t *testing.T) {
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	u, err := g.ParseNode("0x2a:3")
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.ParseNode("0xd1:6")
	if err != nil {
		t.Fatal(err)
	}

	route, info, err := g.RouteEx(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Exact {
		t.Fatal("m=3 route must be exact")
	}

	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyContainer(g, u, v, paths); err != nil {
		t.Fatal(err)
	}
	// The container's best path cannot beat the provably shortest route.
	for _, p := range paths {
		if len(p) < len(route) {
			t.Fatalf("container path shorter than the shortest path")
		}
	}

	// Kill the shortest container path's middle node; RouteAround must give
	// a fault-free alternative consistent with SurvivingPaths.
	shortest := paths[0]
	for _, p := range paths[1:] {
		if len(p) < len(shortest) {
			shortest = p
		}
	}
	faults := map[hhc.Node]bool{shortest[len(shortest)/2]: true}
	alt, err := core.RouteAround(g, u, v, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(core.SurvivingPaths(paths, faults)) != len(paths)-1 {
		t.Fatal("exactly one path should have died")
	}
	if err := g.VerifyPath(u, v, alt); err != nil {
		t.Fatal(err)
	}

	var dot bytes.Buffer
	if err := viz.ContainerDOT(g, u, v, paths, &dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "graph container {") {
		t.Fatal("DOT export malformed")
	}
}

// TestConstructionAgreesWithFlowEverywhereM2: the strongest cross-module
// check — on the fully enumerable HHC_6, for EVERY ordered pair, the
// constructive container and the max-flow baseline must agree on width
// (m+1 = the local connectivity).
func TestConstructionAgreesWithFlowEverywhereM2(t *testing.T) {
	g, err := hhc.New(2)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	n, _ := g.NumNodes()
	for i := uint64(0); i < n; i++ {
		for j := uint64(0); j < n; j++ {
			if i == j {
				continue
			}
			u, v := g.NodeFromID(i), g.NodeFromID(j)
			paths, err := core.DisjointPaths(g, u, v)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := flow.VertexDisjointPathsDinic(dg, i, j, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != len(fp) {
				t.Fatalf("%v->%v: construction %d vs flow %d", u, v, len(paths), len(fp))
			}
		}
	}
}

// TestBroadcastTreeFeedsSimulator: the collective tree's parent edges are
// real links, so a message routed hop-by-hop up the tree must match the
// routing validator.
func TestBroadcastTreeFeedsSimulator(t *testing.T) {
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	root := hhc.Node{X: 0x3c, Y: 2}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		w := g.RandomNode(r)
		path := []hhc.Node{w}
		cur := w
		for cur != root {
			p, err := collective.Parent(g, cur, root)
			if err != nil {
				t.Fatal(err)
			}
			path = append(path, p)
			cur = p
			if len(path) > g.DimOrderLengthBound()+1 {
				t.Fatalf("parent chain from %v does not terminate", w)
			}
		}
		if err := g.VerifyPath(w, root, path); err != nil {
			t.Fatalf("parent chain invalid: %v", err)
		}
	}
}

// TestSimulatorAgreesWithConstructionGuarantee: run the DES with exactly m
// node faults across many seeds; the fault-aware modes must never drop.
func TestSimulatorAgreesWithConstructionGuarantee(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, mode := range []netsim.RoutingMode{netsim.FaultAwareSingle, netsim.MultiPathStripe} {
			res, err := netsim.Run(netsim.Config{
				M: 3, Mode: mode, Flows: 10, MessagesPerFlow: 5,
				MessageFlits: 8, ArrivalRate: 0.01, FaultCount: 3, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Dropped != 0 {
				t.Fatalf("seed %d mode %v: dropped %d with f = m", seed, mode, res.Dropped)
			}
		}
	}
}

// TestWorkloadsAreCrossPackageConsistent: gen's structured pairs respect
// the properties the experiments assume.
func TestWorkloadsAreCrossPackageConsistent(t *testing.T) {
	g, err := hhc.New(4)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= g.T(); d += 4 {
		pairs, err := gen.PairsAtSuperDistance(g, 50, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			// Route's external-hop count must equal the requested d.
			_, info, err := g.RouteEx(p.U, p.V)
			if err != nil {
				t.Fatal(err)
			}
			if info.ExternalHops != d {
				t.Fatalf("d=%d pair routed with %d external hops", d, info.ExternalHops)
			}
		}
	}
}

// TestExperimentRegistryComplete: DESIGN.md promises E1..E15; the registry
// must deliver them all with distinct IDs and working quick runs (runs are
// covered in exp's own tests; here we pin the catalogue).
func TestExperimentRegistryComplete(t *testing.T) {
	entries := exp.All()
	if len(entries) != 22 {
		t.Fatalf("registry has %d entries, want 22", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range []string{"E1", "E5", "E10", "E15"} {
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
}

// TestSeriesRampVisible: the observability tentpole end to end. A live
// pathsvc server with windowed telemetry is sampled by a series ring
// served over /debug/series; an idle phase followed by a load burst must
// be visible in the endpoint's payload — zero-rate intervals first, then
// intervals with nonzero completion rates and latency percentiles — and
// the windowed quantile gauges must read nonzero while the burst is in
// the lookback window.
func TestSeriesRampVisible(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := pathsvc.New(pathsvc.Config{M: 2, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	const interval = 50 * time.Millisecond
	ring := obs.NewSeriesRing(reg, interval, 64)
	ring.Start()
	defer ring.Stop()
	web := httptest.NewServer(ring.Handler())
	defer web.Close()

	// Phase 1: idle. Let a few intervals pass with no traffic.
	time.Sleep(3 * interval)

	// Phase 2: burst. Four closed-loop clients for a handful of intervals.
	c, err := pathsvc.DialWith(ln.Addr().String(), pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, err := hhc.New(2)
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.Pairs(g, 8, gen.Uniform, 7)
	stopBurst := time.Now().Add(6 * interval)
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var req pathsvc.RequestV2
			var resp pathsvc.ResponseV2
			i := 0
			for time.Now().Before(stopBurst) {
				p := pool[i%len(pool)]
				i++
				req = pathsvc.RequestV2{Op: pathsvc.OpCodePaths, U: p.U, V: p.V, TimeoutNS: int64(time.Second)}
				if err := c.DoV2(&req, &resp); err != nil {
					t.Errorf("burst query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	time.Sleep(2 * interval) // let the sampler capture the burst's tail

	resp, err := http.Get(web.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.SeriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Points) < 5 {
		t.Fatalf("ring captured %d points, want >= 5", len(snap.Points))
	}
	var idle, busy int
	var sawLatency bool
	for _, p := range snap.Points {
		switch {
		case p.Counters["pathsvc_completed_total"] == 0:
			idle++
		default:
			busy++
			if p.Rates["pathsvc_completed_total"] <= 0 {
				t.Errorf("busy interval has completion delta but zero rate: %+v", p)
			}
			if h, ok := p.Hists["pathsvc_request_seconds"]; ok && h.Count > 0 && h.P99 > 0 {
				sawLatency = true
			}
		}
	}
	if idle == 0 || busy == 0 {
		t.Fatalf("ramp not visible: %d idle and %d busy intervals (want both nonzero)", idle, busy)
	}
	if !sawLatency {
		t.Error("no busy interval carried request-latency percentiles")
	}
	if snap.Summary["pathsvc_request_seconds"].Count == 0 {
		t.Error("ring summary merged zero request-latency samples")
	}
	// The windowed quantile gauges read from the last 10s of one-second
	// windows, which still contain the burst.
	if q := reg.Snapshot().Gauges[`pathsvc_request_seconds_window{q="p99"}`]; q <= 0 {
		t.Errorf("windowed p99 gauge = %g, want > 0 right after a burst", q)
	}
}

// TestGroundTruthChainM1: on the tiny HHC_3 (8 nodes, a cycle), everything
// must agree with hand-computable facts: diameter 4, degree 2, containers
// of width 2 whose two paths are the two arcs of the cycle.
func TestGroundTruthChainM1(t *testing.T) {
	g, err := hhc.New(1)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	diam, err := graph.Diameter(dg)
	if err != nil {
		t.Fatal(err)
	}
	if diam != 4 {
		t.Fatalf("HHC_3 diameter %d, want 4 (an 8-cycle)", diam)
	}
	edges, err := graph.CountEdges(dg)
	if err != nil || edges != 8 {
		t.Fatalf("HHC_3 has %d edges, want 8", edges)
	}
	u, v := g.NodeFromID(0), g.NodeFromID(5)
	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("container width %d, want 2", len(paths))
	}
	// The two arc lengths of an 8-cycle sum to 8.
	if (len(paths[0])-1)+(len(paths[1])-1) != 8 {
		t.Fatalf("arc lengths %d + %d != 8", len(paths[0])-1, len(paths[1])-1)
	}
}
