# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check test vet lint race bench profile exps exps-csv fuzz fuzz-smoke exhaustive fmt tools

all: check

# The full local gate: what CI runs, minus the race pass.
check: vet lint test

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo invariants: formatting, go vet, and the in-tree hhclint analyzers
# (layering, obscost, determinism, nodefmt, atomicalign, hotpath,
# lockguard, goroutinelife, ctxflow, atomicmix). The second hhclint pass
# flags //lint:ignore directives that no longer suppress anything.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/hhclint ./...
	$(GO) run ./cmd/hhclint -stale-ignores ./...

# Race-detector pass; exercises the container cache's concurrent paths.
race:
	$(GO) test -race ./...

# Quick-mode benchmarks, one per evaluation table/figure plus primitives,
# then short self-served load runs against the path-query daemon: the v1
# JSON lockstep baseline and the v2 binary pipelined configuration, as
# comparable before/after artifacts. Every run also appends one
# timestamped line to BENCH_trajectory.jsonl, so performance drift is
# visible across checkouts instead of each run overwriting the last.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/hhcload -selfserve -m 3 -duration 2s -conns 8 -pairs 16 \
		-proto v1 -json BENCH_pathsvc.json
	$(GO) run ./cmd/hhcload -selfserve -m 3 -duration 2s -conns 8 -pairs 16 \
		-proto v2 -pipeline 16 -json BENCH_pathsvc_v2.json
	@printf '{"at":"%s","v1":%s,"v2":%s}\n' \
		"$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$$(tr -d '\n' < BENCH_pathsvc.json)" \
		"$$(tr -d '\n' < BENCH_pathsvc_v2.json)" >> BENCH_trajectory.jsonl
	@echo "bench: appended entry $$(wc -l < BENCH_trajectory.jsonl | tr -d ' ') to BENCH_trajectory.jsonl"

# Construction benchmarks under the CPU profiler; prints the top-10 by
# cumulative time so hot spots are visible without opening the web UI.
profile:
	$(GO) test -bench='BenchmarkConstruct|BenchmarkBatch' -benchmem \
		-cpuprofile=cpu.prof -o bench.test .
	$(GO) tool pprof -top -nodecount=10 bench.test cpu.prof

# Full-fidelity evaluation (regenerates every table in EXPERIMENTS.md).
exps:
	$(GO) run ./cmd/hhcbench

exps-csv:
	$(GO) run ./cmd/hhcbench -format csv

# Short fuzzing session over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzDisjointPaths -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzRouteAgainstBound -fuzztime=15s ./internal/core
	$(GO) test -fuzz=FuzzDimOrderTermination -fuzztime=15s ./internal/hhc
	$(GO) test -fuzz=FuzzParseNode -fuzztime=10s ./internal/hhc
	$(GO) test -fuzz=FuzzEmbedRing -fuzztime=15s ./internal/hhc
	$(GO) test -fuzz=FuzzParseTrace -fuzztime=10s ./internal/sched
	$(GO) test -fuzz='FuzzWireDecode$$' -fuzztime=10s ./internal/pathsvc
	$(GO) test -fuzz='FuzzWireDecodeV2$$' -fuzztime=10s ./internal/pathsvc

# CI-sized fuzzing: 20s per target over the committed seed corpora in
# each package's testdata/fuzz/. New inputs found here are NOT committed
# automatically — promote interesting ones into testdata/fuzz by hand.
fuzz-smoke:
	$(GO) test -fuzz='FuzzDisjointPaths$$' -fuzztime=20s ./internal/core
	$(GO) test -fuzz='FuzzRouteAgainstBound$$' -fuzztime=20s ./internal/core
	$(GO) test -fuzz='FuzzDimOrderTermination$$' -fuzztime=20s ./internal/hhc
	$(GO) test -fuzz='FuzzParseNode$$' -fuzztime=20s ./internal/hhc
	$(GO) test -fuzz='FuzzEmbedRing$$' -fuzztime=20s ./internal/hhc
	$(GO) test -fuzz='FuzzParseTrace$$' -fuzztime=20s ./internal/sched
	$(GO) test -fuzz='FuzzWireDecode$$' -fuzztime=20s ./internal/pathsvc
	$(GO) test -fuzz='FuzzWireDecodeV2$$' -fuzztime=20s ./internal/pathsvc

# The 4.2M-pair full verification of the container theorem on HHC_11 (~90s).
exhaustive:
	HHC_EXHAUSTIVE=1 $(GO) test -run ExhaustiveM3Full -v ./internal/core

fmt:
	gofmt -w .

tools:
	$(GO) build ./cmd/...
