package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/stats"
)

// intervalPoint is one -interval JSONL line: counter deltas over the
// interval plus the latency distribution of the completions inside it.
// The shape is append-only — CI and plotting scripts parse these lines.
type intervalPoint struct {
	TSec       float64 `json:"t_sec"`
	Sent       int64   `json:"sent"`
	Completed  int64   `json:"completed"`
	Overload   int64   `json:"overload"`
	Deadline   int64   `json:"deadline"`
	Failed     int64   `json:"failed"`
	Reconnects int64   `json:"reconnects"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// timeline collects the latency samples of the current interval. Workers
// append under a mutex; the flusher swaps the slice out once per interval.
// A nil *timeline (interval reporting off) makes record a no-op, so the
// driver loop never branches on whether the timeline is enabled.
type timeline struct {
	mu  sync.Mutex
	win []float64
}

func (t *timeline) record(ms float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.win = append(t.win, ms)
	t.mu.Unlock()
}

func (t *timeline) flush() []float64 {
	t.mu.Lock()
	w := t.win
	t.win = nil
	t.mu.Unlock()
	return w
}

// tallySnap is a point-in-time copy of the counters the timeline deltas.
type tallySnap struct {
	sent, completed, overload, deadline, failed, reconnects int64
}

func (tl *tally) snap() tallySnap {
	return tallySnap{
		sent:       tl.sent.Load(),
		completed:  tl.completed.Load(),
		overload:   tl.overload.Load(),
		deadline:   tl.deadline.Load(),
		failed:     tl.failed.Load(),
		reconnects: tl.reconnects.Load(),
	}
}

// runTimeline emits one JSONL line per interval until stop closes. The
// final partial interval is dropped — the end-of-run report covers totals.
func runTimeline(w io.Writer, tl *tally, tw *timeline, interval time.Duration,
	begin time.Time, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var prev tallySnap
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			cur := tl.snap()
			p := intervalPoint{
				TSec:       now.Sub(begin).Seconds(),
				Sent:       cur.sent - prev.sent,
				Completed:  cur.completed - prev.completed,
				Overload:   cur.overload - prev.overload,
				Deadline:   cur.deadline - prev.deadline,
				Failed:     cur.failed - prev.failed,
				Reconnects: cur.reconnects - prev.reconnects,
			}
			prev = cur
			p.QPS = float64(p.Completed) / interval.Seconds()
			if lat := tw.flush(); len(lat) > 0 {
				ps := stats.Percentiles(lat, 50, 95, 99)
				p.P50Ms, p.P95Ms, p.P99Ms = ps[0], ps[1], ps[2]
			}
			line, err := json.Marshal(p)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "%s\n", line)
		}
	}
}
