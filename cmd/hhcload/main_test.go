package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// TestRouteFaultsValidated: a -faults count the topology cannot satisfy is
// rejected up front — the regression spun forever in the fault picker.
func TestRouteFaultsValidated(t *testing.T) {
	err := run(io.Discard, nil, loadOpts{
		selfserve: true, m: 2, queue: 8, conns: 1, pairs: 4,
		op: "route", faults: 100,
		duration: 50 * time.Millisecond, seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Fatalf("got %v, want -faults validation error", err)
	}
}

// TestRouteSelfserveSmoke: a feasible route workload against a self-served
// instance completes queries with distinct declared faults.
func TestRouteSelfserveSmoke(t *testing.T) {
	err := run(io.Discard, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		op: "route", faults: 3,
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("route smoke: %v", err)
	}
}

// TestPipelinedV2Smoke: the binary wire with pipelined workers completes
// a self-served run cleanly and reports the negotiated protocol.
func TestPipelinedV2Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		proto: "v2", pipeline: 4,
		op:       "batch",
		batch:    4,
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("v2 pipelined smoke: %v", err)
	}
	if !strings.Contains(out.String(), "proto=v2 pipeline=4") {
		t.Errorf("report lacks the negotiated proto/pipeline:\n%s", out.String())
	}
}

// TestBadProtoRejected: an unknown -proto value is a usage error, not a
// silent fallback.
func TestBadProtoRejected(t *testing.T) {
	err := run(io.Discard, nil, loadOpts{
		selfserve: true, m: 2, queue: 8, conns: 1, pairs: 4,
		proto: "v3", op: "paths",
		duration: 50 * time.Millisecond, seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "-proto") {
		t.Fatalf("got %v, want -proto validation error", err)
	}
}

func TestParseSLO(t *testing.T) {
	conds, err := parseSLO("p99<50ms, err<1%")
	if err != nil {
		t.Fatal(err)
	}
	if len(conds) != 2 {
		t.Fatalf("got %d conditions, want 2", len(conds))
	}
	if conds[0].metric != "p99" || conds[0].limit != 50 {
		t.Errorf("cond 0 = %+v, want p99 limit 50ms", conds[0])
	}
	if conds[1].metric != "err" || conds[1].limit != 0.01 {
		t.Errorf("cond 1 = %+v, want err limit 0.01", conds[1])
	}
	// Alternate spellings: bare milliseconds, fractional error budget, <=.
	conds, err = parseSLO("mean<=2.5,err<0.05")
	if err != nil {
		t.Fatal(err)
	}
	if conds[0].limit != 2.5 || conds[1].limit != 0.05 {
		t.Errorf("alt spellings parsed to %+v", conds)
	}
	for _, bad := range []string{"", "p99", "p42<5ms", "p99<cheese", "err<banana%", "p99<-5ms"} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) accepted", bad)
		}
	}
}

func TestEvalSLOBurn(t *testing.T) {
	conds, err := parseSLO("p99<10ms,err<10%")
	if err != nil {
		t.Fatal(err)
	}
	r := report{P99Ms: 25, Sent: 100, Completed: 95}
	results, worst := evalSLO(conds, r)
	if worst != 2.5 {
		t.Errorf("worst burn = %g, want 2.5 (p99 at 25ms of a 10ms budget)", worst)
	}
	if results[0].OK || !results[1].OK {
		t.Errorf("verdicts = %v/%v, want violated/ok", results[0].OK, results[1].OK)
	}
	if results[1].Burn != 0.5 {
		t.Errorf("err burn = %g, want 0.5 (5%% of a 10%% budget)", results[1].Burn)
	}
}

// TestSLOGateViolated: an impossible objective trips the gate with the
// dedicated sentinel (exit 3 in main), and the report carries the verdict.
func TestSLOGateViolated(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 1, pairs: 4,
		op: "paths", slo: "p99<0.000001ms",
		duration: 100 * time.Millisecond, seed: 1,
	})
	if !errors.Is(err, errSLO) {
		t.Fatalf("got %v, want errSLO", err)
	}
	if !strings.Contains(out.String(), "VIOLATED") {
		t.Errorf("report lacks the SLO verdict line:\n%s", out.String())
	}
}

// TestSLOGatePasses: a generous objective leaves a clean run clean.
func TestSLOGatePasses(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 1, pairs: 4,
		op: "paths", slo: "p99<10s,err<100%",
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("slo pass run: %v", err)
	}
	if !strings.Contains(out.String(), "slo        p99<10s") {
		t.Errorf("report lacks the SLO lines:\n%s", out.String())
	}
}

// TestIntervalTimeline: -interval interleaves machine-readable JSONL lines
// with the run, each a valid intervalPoint carrying that interval's rates.
func TestIntervalTimeline(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		op: "paths", interval: 40 * time.Millisecond,
		duration: 300 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("timeline run: %v", err)
	}
	var points int
	var sawCompletion bool
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var p intervalPoint
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad timeline line %q: %v", line, err)
		}
		points++
		if p.Completed > 0 {
			sawCompletion = true
			if p.QPS <= 0 || p.P50Ms <= 0 {
				t.Errorf("interval with completions lacks rate/latency: %+v", p)
			}
		}
	}
	if points < 2 {
		t.Fatalf("timeline emitted %d points over 300ms at 40ms intervals, want >= 2:\n%s", points, out.String())
	}
	if !sawCompletion {
		t.Error("no timeline interval recorded a completion")
	}
}

// TestServerBreakdownReported: the report includes the queue-vs-exec
// split the server echoes in every response, printed next to the
// client-side percentiles.
func TestServerBreakdownReported(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		op:       "paths",
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("paths smoke: %v", err)
	}
	if !strings.Contains(out.String(), "server     queue p50") {
		t.Errorf("report lacks the server-side breakdown line:\n%s", out.String())
	}
}
