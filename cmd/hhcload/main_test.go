package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

// TestRouteFaultsValidated: a -faults count the topology cannot satisfy is
// rejected up front — the regression spun forever in the fault picker.
func TestRouteFaultsValidated(t *testing.T) {
	err := run(io.Discard, nil, loadOpts{
		selfserve: true, m: 2, queue: 8, conns: 1, pairs: 4,
		op: "route", faults: 100,
		duration: 50 * time.Millisecond, seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Fatalf("got %v, want -faults validation error", err)
	}
}

// TestRouteSelfserveSmoke: a feasible route workload against a self-served
// instance completes queries with distinct declared faults.
func TestRouteSelfserveSmoke(t *testing.T) {
	err := run(io.Discard, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		op: "route", faults: 3,
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("route smoke: %v", err)
	}
}

// TestPipelinedV2Smoke: the binary wire with pipelined workers completes
// a self-served run cleanly and reports the negotiated protocol.
func TestPipelinedV2Smoke(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		proto: "v2", pipeline: 4,
		op:       "batch",
		batch:    4,
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("v2 pipelined smoke: %v", err)
	}
	if !strings.Contains(out.String(), "proto=v2 pipeline=4") {
		t.Errorf("report lacks the negotiated proto/pipeline:\n%s", out.String())
	}
}

// TestBadProtoRejected: an unknown -proto value is a usage error, not a
// silent fallback.
func TestBadProtoRejected(t *testing.T) {
	err := run(io.Discard, nil, loadOpts{
		selfserve: true, m: 2, queue: 8, conns: 1, pairs: 4,
		proto: "v3", op: "paths",
		duration: 50 * time.Millisecond, seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "-proto") {
		t.Fatalf("got %v, want -proto validation error", err)
	}
}

// TestServerBreakdownReported: the report includes the queue-vs-exec
// split the server echoes in every response, printed next to the
// client-side percentiles.
func TestServerBreakdownReported(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, loadOpts{
		selfserve: true, m: 2, queue: 64, conns: 2, pairs: 4,
		op:       "paths",
		duration: 100 * time.Millisecond, seed: 1,
	})
	if err != nil {
		t.Fatalf("paths smoke: %v", err)
	}
	if !strings.Contains(out.String(), "server     queue p50") {
		t.Errorf("report lacks the server-side breakdown line:\n%s", out.String())
	}
}
