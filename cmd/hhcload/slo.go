package main

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// errSLO marks a run that completed cleanly but missed its service-level
// objective. main maps it to exit code 3, distinct from exit 1 (the run
// itself failed), so a CI gate can tell "service too slow" from "load
// generator broke".
var errSLO = errors.New("slo violated")

// sloCond is one parsed condition of a -slo spec like "p99<50ms,err<1%".
type sloCond struct {
	metric string  // p50 | p95 | p99 | mean | err
	limit  float64 // milliseconds for latency metrics, fraction for err
	raw    string
}

// sloResult is one evaluated condition in the JSON report. Burn is the
// budget burn rate actual/limit: 1.0 means running exactly at the
// objective, 2.0 means consuming error/latency budget twice as fast as
// allowed. The gate trips when any condition burns above 1.
type sloResult struct {
	Expr   string  `json:"expr"`
	Actual float64 `json:"actual"`
	Limit  float64 `json:"limit"`
	Burn   float64 `json:"burn"`
	OK     bool    `json:"ok"`
}

// parseSLO parses a comma-separated condition list. Latency limits accept
// Go durations ("50ms", "1.5s") or bare numbers meaning milliseconds;
// the err limit accepts a percentage ("1%") or a fraction ("0.01").
func parseSLO(spec string) ([]sloCond, error) {
	var conds []sloCond
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '<')
		if i <= 0 {
			return nil, fmt.Errorf("-slo %q: want metric<limit (e.g. p99<50ms, err<1%%)", part)
		}
		metric := strings.ToLower(strings.TrimSpace(part[:i]))
		val := strings.TrimSpace(strings.TrimPrefix(part[i+1:], "="))
		c := sloCond{metric: metric, raw: part}
		switch metric {
		case "p50", "p95", "p99", "mean":
			if d, err := time.ParseDuration(val); err == nil {
				c.limit = float64(d) / float64(time.Millisecond)
			} else if f, err := strconv.ParseFloat(val, 64); err == nil {
				c.limit = f
			} else {
				return nil, fmt.Errorf("-slo %q: latency limit %q is neither a duration nor a number", part, val)
			}
		case "err":
			if pct, ok := strings.CutSuffix(val, "%"); ok {
				f, err := strconv.ParseFloat(pct, 64)
				if err != nil {
					return nil, fmt.Errorf("-slo %q: bad percentage %q", part, val)
				}
				c.limit = f / 100
			} else if f, err := strconv.ParseFloat(val, 64); err == nil {
				c.limit = f
			} else {
				return nil, fmt.Errorf("-slo %q: error limit %q is neither a percentage nor a fraction", part, val)
			}
		default:
			return nil, fmt.Errorf("-slo %q: unknown metric %q (want p50|p95|p99|mean|err)", part, metric)
		}
		if c.limit < 0 {
			return nil, fmt.Errorf("-slo %q: negative limit", part)
		}
		conds = append(conds, c)
	}
	if len(conds) == 0 {
		return nil, errors.New("-slo: empty spec")
	}
	return conds, nil
}

// evalSLO evaluates every condition against the finished run and returns
// the per-condition results plus the worst burn rate across them.
func evalSLO(conds []sloCond, r report) (results []sloResult, worst float64) {
	for _, c := range conds {
		var actual float64
		switch c.metric {
		case "p50":
			actual = r.P50Ms
		case "p95":
			actual = r.P95Ms
		case "p99":
			actual = r.P99Ms
		case "mean":
			actual = r.MeanMs
		case "err":
			// Anything sent that did not complete counts against the error
			// budget: sheds, deadline misses, failures, broken streams. That
			// is deliberately strict — an SLO gate cares about what the
			// caller experienced, not why the server declined.
			if r.Sent > 0 {
				actual = float64(r.Sent-r.Completed) / float64(r.Sent)
			}
		}
		var burn float64
		switch {
		case c.limit > 0:
			burn = actual / c.limit
		case actual > 0:
			burn = math.Inf(1) // zero budget, nonzero badness
		}
		results = append(results, sloResult{
			Expr: c.raw, Actual: actual, Limit: c.limit, Burn: burn, OK: burn <= 1,
		})
		if burn > worst {
			worst = burn
		}
	}
	return results, worst
}
