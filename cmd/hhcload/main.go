// Command hhcload drives a pathsvc server (cmd/hhcd) with a configurable
// workload and reports throughput plus latency percentiles. It runs closed
// loop (every connection fires back to back) or open loop (-qps paces
// arrivals against a target rate), and doubles as the CI smoke client: it
// exits non-zero when no query completes or any protocol error occurs —
// control outcomes (overload, deadline, shutdown) are expected under
// pressure and reported separately.
//
// Usage:
//
//	hhcload -addr 127.0.0.1:9091 -conns 8 -duration 3s
//	hhcload -addr 127.0.0.1:9091 -qps 2000 -pairs 4        # open loop, hot pair set
//	hhcload -selfserve -m 4 -duration 2s -json BENCH_pathsvc.json
//	hhcload -selfserve -proto v2 -pipeline 16 -json BENCH_pathsvc_v2.json
//	hhcload -cluster 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103 -duration 3s
//
// -cluster sprays connections round-robin across a peer list instead of a
// single -addr; the report and JSON gain a per-peer breakdown (qps, latency
// percentiles, errors) plus the completed-throughput skew ratio.
//
// -proto selects the wire protocol (v1 JSON, v2 binary, or auto to
// negotiate the highest the server speaks), and -pipeline keeps that many
// requests in flight per connection instead of running each connection in
// lockstep. Connections self-heal: a poisoned client (server restart,
// stream desync) is redialed and the run continues, with the redial count
// reported.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/hhc"
	"repro/internal/pathsvc"
	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9091", "pathsvc server address")
	selfserve := flag.Bool("selfserve", false, "start an in-process server on a loopback port and load it (no hhcd needed)")
	m := flag.Int("m", 4, "son-cube dimension of the -selfserve server (ignored with a remote -addr)")
	queue := flag.Int("queue", pathsvc.DefaultQueueDepth, "admission queue depth of the -selfserve server")
	conns := flag.Int("conns", 8, "concurrent client connections")
	proto := flag.String("proto", "auto", "wire protocol: v1 (JSON), v2 (binary), or auto (negotiate)")
	pipeline := flag.Int("pipeline", 1, "in-flight requests per connection (1 = lockstep)")
	qps := flag.Float64("qps", 0, "target offered load in queries/sec across all connections (0 = closed loop)")
	duration := flag.Duration("duration", 2*time.Second, "load duration")
	pairs := flag.Int("pairs", 16, "distinct source/destination pairs in the pool (small pools create duplicate in-flight queries)")
	op := flag.String("op", "paths", "query kind: paths|route|batch")
	batch := flag.Int("batch", 8, "pairs per request when -op batch")
	faults := flag.Int("faults", 2, "declared faults per request when -op route")
	maxPaths := flag.Int("maxpaths", 0, "request only the first k container paths (0 = all)")
	deadline := flag.Duration("deadline", 0, "per-request deadline sent to the server (0 = server default)")
	seed := flag.Int64("seed", 1, "workload seed")
	clusterSpec := flag.String("cluster", "", "spray connections round-robin across this comma-separated peer list (host:port,...); overrides -addr")
	jsonPath := flag.String("json", "", "write the report as JSON to this file ('-' = stdout)")
	interval := flag.Duration("interval", 0, "emit one JSONL timeline line (deltas + latency percentiles) per this interval (0 = off)")
	slo := flag.String("slo", "", "gate the run on a service-level objective, e.g. 'p99<50ms,err<1%' (violation = exit 3)")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), loadOpts{
			addr: *addr, selfserve: *selfserve, m: *m, queue: *queue,
			conns: *conns, proto: *proto, pipeline: *pipeline,
			qps: *qps, duration: *duration, pairs: *pairs,
			op: *op, batch: *batch, faults: *faults, maxPaths: *maxPaths,
			deadline: *deadline, seed: *seed, jsonPath: *jsonPath,
			interval: *interval, slo: *slo, cluster: *clusterSpec,
		})
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcload:", err)
		if errors.Is(err, errSLO) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

type loadOpts struct {
	addr          string
	selfserve     bool
	m, queue      int
	conns         int
	proto         string
	pipeline      int
	qps           float64
	duration      time.Duration
	pairs         int
	op            string
	batch, faults int
	maxPaths      int
	deadline      time.Duration
	seed          int64
	jsonPath      string
	interval      time.Duration
	slo           string
	cluster       string
}

// report is the machine-readable run summary (the BENCH_pathsvc.json shape).
type report struct {
	Op             string  `json:"op"`
	Proto          int     `json:"proto"`
	Pipeline       int     `json:"pipeline"`
	Conns          int     `json:"conns"`
	TargetQPS      float64 `json:"target_qps"`
	DurationSec    float64 `json:"duration_sec"`
	Sent           int64   `json:"sent"`
	Completed      int64   `json:"completed"`
	Degraded       int64   `json:"degraded"`
	Coalesced      int64   `json:"coalesced"`
	Overload       int64   `json:"overload"`
	Deadline       int64   `json:"deadline"`
	Shutdown       int64   `json:"shutdown"`
	Failed         int64   `json:"failed"`
	Reconnects     int64   `json:"reconnects"`
	Poisoned       int64   `json:"poisoned"`
	ProtocolErrors int64   `json:"protocol_errors"`
	AchievedQPS    float64 `json:"achieved_qps"`
	// Open-loop pacer accounting (zero in closed-loop runs): OfferedQPS is
	// the rate the pacer actually emitted; PacerDropped counts tokens shed
	// because every worker was already busy, i.e. how far the client side
	// fell short of the requested arrival rate.
	OfferedQPS   float64 `json:"offered_qps,omitempty"`
	PacerDropped int64   `json:"pacer_dropped,omitempty"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MeanMs       float64 `json:"mean_ms"`
	// Server-side timing echoed in responses (hhcd reports queue wait and
	// construction time per request): where client-observed latency was
	// actually spent. Zero when the server predates the timing fields.
	SrvQueueP50Ms float64 `json:"srv_queue_p50_ms"`
	SrvQueueP95Ms float64 `json:"srv_queue_p95_ms"`
	SrvExecP50Ms  float64 `json:"srv_exec_p50_ms"`
	SrvExecP95Ms  float64 `json:"srv_exec_p95_ms"`
	// SLO gate verdict (present only when -slo was given): the spec, the
	// worst burn rate across conditions, and the per-condition breakdown.
	SLO        string      `json:"slo,omitempty"`
	SLOBurn    float64     `json:"slo_burn,omitempty"`
	SLOResults []sloResult `json:"slo_results,omitempty"`
	// Cluster spray breakdown (present only with -cluster): one entry per
	// peer plus the completed-throughput skew ratio (max/min across peers;
	// 0 when a peer completed nothing).
	Peers     []peerReport `json:"peers,omitempty"`
	SkewRatio float64      `json:"skew_ratio,omitempty"`
}

// peerReport is one peer's slice of a -cluster run. The srv columns are
// the queue/exec timing this peer echoed in its responses; on a forwarded
// answer that is the owner's relayed timing, so a hot shard shows up in
// every requester's srv-exec column, not just its own.
type peerReport struct {
	Addr          string  `json:"addr"`
	Conns         int     `json:"conns"`
	Completed     int64   `json:"completed"`
	Errors        int64   `json:"errors"`
	QPS           float64 `json:"qps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	SrvQueueP50Ms float64 `json:"srv_queue_p50_ms,omitempty"`
	SrvExecP50Ms  float64 `json:"srv_exec_p50_ms,omitempty"`
}

// tally is the shared outcome ledger the workers update atomically.
type tally struct {
	sent, completed, degraded    atomic.Int64
	coalesced                    atomic.Int64
	overload, deadline, shutdown atomic.Int64
	failed, protocolErrors       atomic.Int64
	// reconnects counts every redial (dial failures and poison recoveries);
	// poisoned counts only ErrClientBroken events, so the two separate
	// "server was unreachable" from "the stream desynced mid-run".
	reconnects, poisoned atomic.Int64
	// Pacer accounting: tokens emitted vs dropped on a full buffer.
	paceSent, paceDropped atomic.Int64
}

// connSamples is one connection's latency ledger: client-observed
// end-to-end times plus the server-side queue/exec breakdown it echoed.
// errs counts every non-completed outcome (control or failure), which the
// -cluster breakdown attributes to the worker's peer.
type connSamples struct {
	lat, queue, exec []float64
	errs             int64
}

func run(w io.Writer, args []string, o loadOpts) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	switch o.op {
	case "paths", "route", "batch":
	default:
		return fmt.Errorf("-op %q: want paths|route|batch", o.op)
	}
	if o.conns < 1 || o.pairs < 1 || o.duration <= 0 {
		return fmt.Errorf("-conns %d / -pairs %d / -duration %s out of range: all must be positive",
			o.conns, o.pairs, o.duration)
	}
	if o.pipeline == 0 {
		o.pipeline = 1 // zero value = lockstep, same as the flag default
	}
	if o.pipeline < 1 {
		return fmt.Errorf("-pipeline %d out of range: must be positive", o.pipeline)
	}
	if o.interval < 0 {
		return fmt.Errorf("-interval %s out of range: must be non-negative", o.interval)
	}
	var sloConds []sloCond
	if o.slo != "" {
		var err error
		if sloConds, err = parseSLO(o.slo); err != nil {
			return err
		}
	}
	var dialOpts pathsvc.DialOptions
	switch o.proto {
	case "auto", "":
		dialOpts.Proto = 0
	case "v1":
		dialOpts.Proto = pathsvc.ProtocolVersion
	case "v2":
		dialOpts.Proto = pathsvc.ProtocolV2
	default:
		return fmt.Errorf("-proto %q: want v1|v2|auto", o.proto)
	}

	// -cluster sprays connections round-robin across a peer list; the first
	// peer doubles as the Info-probe target (all peers serve the same m).
	var peerAddrs []string
	if o.cluster != "" {
		if o.selfserve {
			return errors.New("-cluster and -selfserve are mutually exclusive")
		}
		var perr error
		if peerAddrs, perr = cluster.ParsePeers(o.cluster); perr != nil {
			return fmt.Errorf("-cluster: %w", perr)
		}
	}

	addr := o.addr
	if len(peerAddrs) > 0 {
		addr = peerAddrs[0]
	}
	var local *pathsvc.Server
	if o.selfserve {
		if err := cliutil.ValidateM(o.m); err != nil {
			return err
		}
		srv, ln, err := startLocal(o.m, o.queue)
		if err != nil {
			return err
		}
		local = srv
		addr = ln
		fmt.Fprintf(w, "hhcload: self-serving m=%d on %s\n", o.m, addr)
	}

	// Discover the served topology so the pair pool matches it.
	probe, err := pathsvc.Dial(addr)
	if err != nil {
		return err
	}
	info, err := probe.Info()
	if err != nil {
		probe.Close()
		return fmt.Errorf("info query: %w", err)
	}
	_ = probe.Close()
	g, err := hhc.New(info.M)
	if err != nil {
		return err
	}
	if o.op == "route" {
		// The fault picker draws nodes distinct from both endpoints, so the
		// topology must have that many to give; reject impossible counts
		// instead of spinning forever in issue.
		if o.faults < 0 {
			return fmt.Errorf("-faults %d out of range: must be non-negative", o.faults)
		}
		if n, ok := g.NumNodes(); ok && uint64(o.faults) > n-2 {
			return fmt.Errorf("-faults %d exceeds the %d non-endpoint nodes of the m=%d topology",
				o.faults, n-2, info.M)
		}
	}
	pool := gen.Pairs(g, o.pairs, gen.Uniform, o.seed)

	// One self-healing handle per connection; -pipeline workers share each
	// one, keeping that many requests in flight on the same stream. The
	// first dial also resolves the negotiated protocol for the report.
	reconns := make([]*pathsvc.Reconn, o.conns)
	wireProto := dialOpts.Proto
	for i := range reconns {
		target := addr
		if len(peerAddrs) > 0 {
			target = peerAddrs[i%len(peerAddrs)]
		}
		reconns[i] = pathsvc.NewReconn(target, dialOpts)
		defer reconns[i].Close()
		c, err := reconns[i].Client()
		if err != nil {
			return err
		}
		wireProto = c.Proto()
	}

	// Open-loop pacing: one token per intended arrival. Closed loop skips
	// the pacer and lets every connection fire back to back.
	var tl tally
	var tokens chan struct{}
	stop := make(chan struct{})
	if o.qps > 0 {
		tokens = make(chan struct{}, 4096)
		go pace(tokens, stop, o.qps, &tl)
	}

	workers := o.conns * o.pipeline
	samples := make([]connSamples, workers)
	var wg sync.WaitGroup
	begin := time.Now()
	end := begin.Add(o.duration)

	// -interval: a background flusher emits one JSONL line per interval
	// while the workers run.
	var tw *timeline
	var tlDone chan struct{}
	if o.interval > 0 {
		tw = &timeline{}
		tlDone = make(chan struct{})
		go runTimeline(w, &tl, tw, o.interval, begin, stop, tlDone)
	}

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples[i] = drive(reconns[i/o.pipeline], g, pool, o, &tl, tw, tokens, end, o.seed+int64(i)+1)
		}(i)
	}
	wg.Wait()
	close(stop)
	if tlDone != nil {
		<-tlDone // the report must not interleave with a timeline line
	}
	elapsed := time.Since(begin)

	var all, queue, exec []float64
	for _, s := range samples {
		all = append(all, s.lat...)
		queue = append(queue, s.queue...)
		exec = append(exec, s.exec...)
	}
	rep := report{
		Op: o.op, Proto: wireProto, Pipeline: o.pipeline,
		Conns: o.conns, TargetQPS: o.qps,
		DurationSec:    elapsed.Seconds(),
		Sent:           tl.sent.Load(),
		Completed:      tl.completed.Load(),
		Degraded:       tl.degraded.Load(),
		Coalesced:      tl.coalesced.Load(),
		Overload:       tl.overload.Load(),
		Deadline:       tl.deadline.Load(),
		Shutdown:       tl.shutdown.Load(),
		Failed:         tl.failed.Load(),
		Reconnects:     tl.reconnects.Load(),
		Poisoned:       tl.poisoned.Load(),
		ProtocolErrors: tl.protocolErrors.Load(),
		PacerDropped:   tl.paceDropped.Load(),
	}
	rep.AchievedQPS = float64(rep.Completed) / elapsed.Seconds()
	if o.qps > 0 {
		rep.OfferedQPS = float64(tl.paceSent.Load()) / elapsed.Seconds()
	}
	if len(all) > 0 {
		ps := stats.Percentiles(all, 50, 95, 99)
		rep.P50Ms, rep.P95Ms, rep.P99Ms = ps[0], ps[1], ps[2]
		rep.MeanMs = stats.SummarizeFloats(all).Mean
	}
	if len(queue) > 0 {
		qs := stats.Percentiles(queue, 50, 95)
		rep.SrvQueueP50Ms, rep.SrvQueueP95Ms = qs[0], qs[1]
	}
	if len(exec) > 0 {
		es := stats.Percentiles(exec, 50, 95)
		rep.SrvExecP50Ms, rep.SrvExecP95Ms = es[0], es[1]
	}
	if len(peerAddrs) > 0 {
		rep.Peers, rep.SkewRatio = peerBreakdown(peerAddrs, samples, o, elapsed)
	}
	var sloWorst float64
	if len(sloConds) > 0 {
		rep.SLO = o.slo
		rep.SLOResults, sloWorst = evalSLO(sloConds, rep)
		rep.SLOBurn = sloWorst
	}
	printReport(w, rep)

	if local != nil {
		if err := drainLocal(w, local); err != nil {
			return err
		}
	}
	if o.jsonPath != "" {
		if err := writeJSON(w, o.jsonPath, rep); err != nil {
			return err
		}
	}
	if rep.ProtocolErrors > 0 {
		return fmt.Errorf("%d protocol errors", rep.ProtocolErrors)
	}
	if rep.Completed == 0 {
		return errors.New("no query completed")
	}
	if sloWorst > 1 {
		return fmt.Errorf("%w: %q burned %.2fx its budget", errSLO, o.slo, sloWorst)
	}
	return nil
}

// peerBreakdown attributes each worker's samples to its peer — worker i
// drives connection i/pipeline, and connection c dials
// peerAddrs[c%len(peerAddrs)] — then derives per-peer throughput, latency
// percentiles, and the completed-count skew ratio.
func peerBreakdown(peerAddrs []string, samples []connSamples, o loadOpts,
	elapsed time.Duration) ([]peerReport, float64) {
	peers := make([]peerReport, len(peerAddrs))
	lats := make([][]float64, len(peerAddrs))
	queues := make([][]float64, len(peerAddrs))
	execs := make([][]float64, len(peerAddrs))
	for i := range peers {
		peers[i].Addr = peerAddrs[i]
	}
	for c := 0; c < o.conns; c++ {
		peers[c%len(peerAddrs)].Conns++
	}
	for i, s := range samples {
		p := (i / o.pipeline) % len(peerAddrs)
		peers[p].Completed += int64(len(s.lat))
		peers[p].Errors += s.errs
		lats[p] = append(lats[p], s.lat...)
		queues[p] = append(queues[p], s.queue...)
		execs[p] = append(execs[p], s.exec...)
	}
	minC, maxC := int64(-1), int64(0)
	for i := range peers {
		peers[i].QPS = float64(peers[i].Completed) / elapsed.Seconds()
		if len(lats[i]) > 0 {
			ps := stats.Percentiles(lats[i], 50, 95, 99)
			peers[i].P50Ms, peers[i].P95Ms, peers[i].P99Ms = ps[0], ps[1], ps[2]
		}
		if len(queues[i]) > 0 {
			peers[i].SrvQueueP50Ms = stats.Percentiles(queues[i], 50)[0]
		}
		if len(execs[i]) > 0 {
			peers[i].SrvExecP50Ms = stats.Percentiles(execs[i], 50)[0]
		}
		if minC < 0 || peers[i].Completed < minC {
			minC = peers[i].Completed
		}
		if peers[i].Completed > maxC {
			maxC = peers[i].Completed
		}
	}
	skew := 0.0
	if minC > 0 {
		skew = float64(maxC) / float64(minC)
	}
	return peers, skew
}

// startLocal binds an in-process server on a loopback port. A deliberately
// aggressive shed threshold makes the control behaviors visible even in a
// short self-contained run.
func startLocal(m, queue int) (*pathsvc.Server, string, error) {
	srv, err := pathsvc.New(pathsvc.Config{M: m, QueueDepth: queue, ShedThreshold: 0.25})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// drainLocal gracefully shuts the self-served instance down and prints its
// side of the story.
func drainLocal(w io.Writer, srv *pathsvc.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("selfserve drain: %w", err)
	}
	fmt.Fprintf(w, "  server   %s\n", srv.Counters())
	fmt.Fprintf(w, "  cache    %s\n", srv.CacheSnapshot())
	return nil
}

// pace emits one token per intended arrival at the target rate, absorbing
// scheduler jitter by sleeping toward absolute deadlines. It ledgers what
// it emitted vs dropped so the report can state the offered rate the run
// actually achieved instead of silently equating it with -qps.
func pace(tokens chan<- struct{}, stop <-chan struct{}, qps float64, tl *tally) {
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	next := time.Now()
	for {
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case <-stop:
			return
		case tokens <- struct{}{}:
			tl.paceSent.Add(1)
		default:
			// Client-side buffer full: the server is slower than the offered
			// rate; dropping the token keeps the pacer honest.
			tl.paceDropped.Add(1)
		}
	}
}

// echo is the server-side telemetry a completed response carried,
// protocol-independent (filled from *Response on v1, ResponseV2 on v2).
type echo struct {
	degraded, coalesced bool
	queueNS, execNS     int64
}

// drive runs one worker's request loop until the deadline. Workers
// sharing a Reconn pipeline their requests over the same connection; a
// poisoned client is invalidated and the loop redials.
func drive(rc *pathsvc.Reconn, g *hhc.Graph, pool []gen.Pair, o loadOpts,
	tl *tally, tw *timeline, tokens <-chan struct{}, end time.Time, seed int64) connSamples {
	r := rand.New(rand.NewSource(seed))
	var s connSamples
	var req pathsvc.RequestV2
	var resp pathsvc.ResponseV2
	for time.Now().Before(end) {
		if tokens != nil {
			select {
			case <-tokens:
			case <-time.After(time.Until(end)):
				return s
			}
		}
		c, err := rc.Client()
		if err != nil {
			// Server gone (restart window, hard kill). Back off briefly and
			// let the next iteration redial; a server that never returns
			// shows up as "no query completed".
			tl.reconnects.Add(1)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		p := pool[r.Intn(len(pool))]
		tl.sent.Add(1)
		start := time.Now()
		var e echo
		if c.Proto() >= pathsvc.ProtocolV2 {
			e, err = issueV2(c, g, p, pool, o, r, &req, &resp)
		} else {
			e, err = issue(c, g, p, pool, o, r)
		}
		elapsed := time.Since(start)
		if err != nil {
			s.errs++
		}
		switch {
		case err == nil:
			tl.completed.Add(1)
			ms := float64(elapsed) / float64(time.Millisecond)
			s.lat = append(s.lat, ms)
			tw.record(ms)
			if e.degraded {
				tl.degraded.Add(1)
			}
			if e.coalesced {
				tl.coalesced.Add(1)
			}
			// Coalesced answers rode an in-flight query and never queued;
			// their zero queue_ns would drag the wait percentiles below
			// what queued requests actually saw, so only exec is pooled.
			if e.execNS > 0 {
				s.exec = append(s.exec, float64(e.execNS)/1e6)
				if !e.coalesced {
					s.queue = append(s.queue, float64(e.queueNS)/1e6)
				}
			}
		case errors.Is(err, pathsvc.ErrOverload):
			tl.overload.Add(1)
		case errors.Is(err, pathsvc.ErrDeadlineExceeded):
			tl.deadline.Add(1)
		case errors.Is(err, pathsvc.ErrClientTimeout):
			// Client-side wait budget expired before any server verdict;
			// account it with the deadline outcomes.
			tl.deadline.Add(1)
		case errors.Is(err, pathsvc.ErrShutdown):
			tl.shutdown.Add(1)
			return s
		case errors.Is(err, pathsvc.ErrClientBroken):
			// Stream desync or server restart poisoned the connection:
			// discard it and redial rather than aborting the run.
			rc.Invalidate(c)
			tl.poisoned.Add(1)
			tl.reconnects.Add(1)
		default:
			var srvErr *pathsvc.ServerError
			if errors.As(err, &srvErr) {
				tl.failed.Add(1)
				continue
			}
			// Transport- or framing-level failure: the smoke must notice.
			tl.protocolErrors.Add(1)
			return s
		}
	}
	return s
}

// issue sends one request of the configured kind over the v1 JSON wire.
func issue(c *pathsvc.Client, g *hhc.Graph, p gen.Pair, pool []gen.Pair,
	o loadOpts, r *rand.Rand) (echo, error) {
	u, v := g.FormatNode(p.U), g.FormatNode(p.V)
	var resp *pathsvc.Response
	var err error
	switch o.op {
	case "route":
		// Distinct faults avoiding both endpoints; run validated o.faults
		// against the topology size, so this terminates.
		fs := make([]string, 0, o.faults)
		seen := make(map[hhc.Node]bool, o.faults)
		for len(fs) < o.faults {
			f := g.RandomNode(r)
			if f != p.U && f != p.V && !seen[f] {
				seen[f] = true
				fs = append(fs, g.FormatNode(f))
			}
		}
		resp, err = c.Route(u, v, fs, o.deadline)
	case "batch":
		bp := make([][2]string, 0, o.batch)
		for len(bp) < o.batch {
			q := pool[r.Intn(len(pool))]
			bp = append(bp, [2]string{g.FormatNode(q.U), g.FormatNode(q.V)})
		}
		resp, err = c.Batch(bp, o.deadline)
	default:
		resp, err = c.Paths(u, v, o.maxPaths, o.deadline)
	}
	if err != nil || resp == nil {
		return echo{}, err
	}
	return echo{degraded: resp.Degraded, coalesced: resp.Coalesced,
		queueNS: resp.QueueNS, execNS: resp.ExecNS}, nil
}

// issueV2 sends one request of the configured kind over the binary wire,
// node-native and reusing the worker's request/response scratch so the
// driver itself stays off the allocator's hot path.
func issueV2(c *pathsvc.Client, g *hhc.Graph, p gen.Pair, pool []gen.Pair,
	o loadOpts, r *rand.Rand, req *pathsvc.RequestV2, resp *pathsvc.ResponseV2) (echo, error) {
	*req = pathsvc.RequestV2{
		U: p.U, V: p.V,
		Faults: req.Faults[:0], Pairs: req.Pairs[:0],
		MaxPaths:  o.maxPaths,
		TimeoutNS: int64(o.deadline),
	}
	switch o.op {
	case "route":
		req.Op = pathsvc.OpCodeRoute
		seen := make(map[hhc.Node]bool, o.faults)
		for len(req.Faults) < o.faults {
			f := g.RandomNode(r)
			if f != p.U && f != p.V && !seen[f] {
				seen[f] = true
				req.Faults = append(req.Faults, f)
			}
		}
	case "batch":
		req.Op = pathsvc.OpCodeBatch
		for len(req.Pairs) < o.batch {
			q := pool[r.Intn(len(pool))]
			req.Pairs = append(req.Pairs, pathsvc.NodePair{U: q.U, V: q.V})
		}
	default:
		req.Op = pathsvc.OpCodePaths
	}
	if err := c.DoV2(req, resp); err != nil {
		return echo{}, err
	}
	return echo{degraded: resp.Degraded, coalesced: resp.Coalesced,
		queueNS: resp.QueueNS, execNS: resp.ExecNS}, nil
}

func printReport(w io.Writer, r report) {
	fmt.Fprintf(w, "hhcload op=%s proto=v%d pipeline=%d conns=%d target-qps=%g duration=%.2fs\n",
		r.Op, r.Proto, r.Pipeline, r.Conns, r.TargetQPS, r.DurationSec)
	fmt.Fprintf(w, "  sent       %d\n", r.Sent)
	fmt.Fprintf(w, "  completed  %d (%.0f qps)\n", r.Completed, r.AchievedQPS)
	fmt.Fprintf(w, "  degraded   %d\n", r.Degraded)
	fmt.Fprintf(w, "  coalesced  %d\n", r.Coalesced)
	fmt.Fprintf(w, "  overload   %d\n", r.Overload)
	fmt.Fprintf(w, "  deadline   %d\n", r.Deadline)
	fmt.Fprintf(w, "  shutdown   %d\n", r.Shutdown)
	fmt.Fprintf(w, "  failed     %d\n", r.Failed)
	fmt.Fprintf(w, "  reconnects %d (poisoned %d)\n", r.Reconnects, r.Poisoned)
	fmt.Fprintf(w, "  proto errs %d\n", r.ProtocolErrors)
	if r.TargetQPS > 0 {
		fmt.Fprintf(w, "  pacer      offered %.0f of %g qps requested (%d tokens dropped)\n",
			r.OfferedQPS, r.TargetQPS, r.PacerDropped)
	}
	fmt.Fprintf(w, "  latency    p50 %.3fms  p95 %.3fms  p99 %.3fms  mean %.3fms\n",
		r.P50Ms, r.P95Ms, r.P99Ms, r.MeanMs)
	if r.SrvQueueP50Ms > 0 || r.SrvExecP50Ms > 0 {
		fmt.Fprintf(w, "  server     queue p50 %.3fms  p95 %.3fms  |  exec p50 %.3fms  p95 %.3fms\n",
			r.SrvQueueP50Ms, r.SrvQueueP95Ms, r.SrvExecP50Ms, r.SrvExecP95Ms)
	}
	if len(r.Peers) > 0 {
		fmt.Fprintf(w, "  cluster    %d peers, completed-skew %.2fx\n", len(r.Peers), r.SkewRatio)
		for _, p := range r.Peers {
			fmt.Fprintf(w, "    %-21s conns %d  completed %d (%.0f qps)  errs %d  p50 %.3fms  p95 %.3fms  p99 %.3fms  srv-q p50 %.3fms  srv-x p50 %.3fms\n",
				p.Addr, p.Conns, p.Completed, p.QPS, p.Errors, p.P50Ms, p.P95Ms, p.P99Ms,
				p.SrvQueueP50Ms, p.SrvExecP50Ms)
		}
	}
	for _, res := range r.SLOResults {
		verdict := "ok"
		if !res.OK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "  slo        %-12s actual %.4g  limit %.4g  burn %.2fx  %s\n",
			res.Expr, res.Actual, res.Limit, res.Burn, verdict)
	}
}

func writeJSON(w io.Writer, path string, r report) error {
	payload, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if path == "-" {
		_, err = w.Write(payload)
		return err
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		return fmt.Errorf("-json: %w", err)
	}
	return nil
}
