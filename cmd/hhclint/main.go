// Command hhclint runs the repository's invariant analyzers over Go
// packages and reports findings in the conventional file:line:col form.
//
// Usage:
//
//	hhclint [-json] [-stale-ignores] [packages...]
//
// Package patterns are resolved by `go list` (default "./..."). The exit
// status is 0 when the tree is clean, 1 when any analyzer fired, and 2
// when packages failed to load or type-check. Findings can be suppressed
// line-by-line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// -stale-ignores inverts the audit: instead of findings it reports every
// //lint:ignore directive that no longer suppresses anything, so fixed
// code sheds its suppressions instead of accumulating blind spots. CI
// runs both modes.
//
// Unlike the other cmd/ binaries, hhclint takes positional arguments (the
// package patterns) and carries no -metrics/-trace flags: it is a build
// tool, not a workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicalign"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/goroutinelife"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/layering"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/nodefmt"
	"repro/internal/analysis/obscost"
)

// analyzers is the shipped rule suite.
var analyzers = []*analysis.Analyzer{
	atomicalign.Analyzer,
	atomicmix.Analyzer,
	ctxflow.Analyzer,
	determinism.Analyzer,
	goroutinelife.Analyzer,
	hotpath.Analyzer,
	layering.Analyzer,
	lockguard.Analyzer,
	nodefmt.Analyzer,
	obscost.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for dashboards and CI tooling)")
	staleIgnores := flag.Bool("stale-ignores", false, "report //lint:ignore directives that suppress no finding instead of findings")
	flag.Usage = usage
	flag.Parse()
	code, err := run(os.Stdout, flag.Args(), *jsonOut, *staleIgnores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhclint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: hhclint [-json] [-stale-ignores] [packages...]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-13s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
	flag.PrintDefaults()
}

// jsonFinding is the -json wire form: the position is flattened so
// consumers need no knowledge of go/token. This schema is golden-pinned
// by main_test.go — changing a field name or adding one is a contract
// change for CI annotations and hhcobs, and must update the golden file
// deliberately.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// findingsJSON flattens findings into the pinned wire form, with paths
// made working-directory-relative for stable output across checkouts.
func findingsJSON(findings []analysis.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

// writeJSON renders v the way every hhclint JSON mode does: two-space
// indented, one trailing newline.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// run executes the suite and writes findings (or, in stale mode, unused
// suppressions) to w. The int is the process exit code for a successful
// run (0 clean, 1 findings); a non-nil error means the analysis itself
// could not complete.
func run(w io.Writer, patterns []string, jsonOut, staleIgnores bool) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	for _, pkg := range pkgs {
		if len(pkg.Errs) > 0 {
			return 0, fmt.Errorf("%s does not type-check: %w", pkg.Path, pkg.Errs[0])
		}
	}
	findings, stale, err := analysis.RunWithStale(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	if staleIgnores {
		return writeStale(w, stale, jsonOut)
	}
	if jsonOut {
		if err := writeJSON(w, findingsJSON(findings)); err != nil {
			return 0, err
		}
	} else {
		for _, f := range findings {
			f.Pos.Filename = relPath(f.Pos.Filename)
			fmt.Fprintln(w, f)
		}
	}
	if len(findings) > 0 {
		return 1, nil
	}
	return 0, nil
}

// writeStale reports unused suppressions; exit code 1 when any exist.
func writeStale(w io.Writer, stale []analysis.StaleIgnore, jsonOut bool) (int, error) {
	if jsonOut {
		out := make([]analysis.StaleIgnore, 0, len(stale))
		for _, s := range stale {
			s.File = relPath(s.File)
			out = append(out, s)
		}
		if err := writeJSON(w, out); err != nil {
			return 0, err
		}
	} else {
		for _, s := range stale {
			s.File = relPath(s.File)
			fmt.Fprintln(w, s)
		}
	}
	if len(stale) > 0 {
		return 1, nil
	}
	return 0, nil
}

// relPath shortens an absolute position to a working-directory-relative
// one when possible, keeping output stable across checkouts.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return p
}
