package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestJSONSchemaGolden pins the -json wire form byte-for-byte. Downstream
// tooling (CI annotations, hhcobs ingestion) parses this schema; renaming
// a field, reordering keys, or changing the indentation is a contract
// change and must be made here first, on purpose.
func TestJSONSchemaGolden(t *testing.T) {
	findings := []analysis.Finding{
		{
			Analyzer: "lockguard",
			Pos:      token.Position{Filename: "internal/obs/tracer.go", Line: 42, Column: 7},
			Message:  "read of ring (guarded by mu) in Snapshot without holding t.mu",
		},
		{
			Analyzer: "goroutinelife",
			Pos:      token.Position{Filename: "internal/pathsvc/client.go", Line: 101, Column: 2},
			Message:  "goroutine has no lifecycle: tie it to a sync.WaitGroup, a stop/close channel, or annotate //hhc:detached <reason>",
		},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, findingsJSON(findings)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "findings.json"), buf.Bytes())

	// The empty case must stay a JSON array, never null.
	buf.Reset()
	if err := writeJSON(&buf, findingsJSON(nil)); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "findings_empty.json"), buf.Bytes())
}

// TestStaleJSONGolden pins the -stale-ignores -json form the same way.
func TestStaleJSONGolden(t *testing.T) {
	stale := []analysis.StaleIgnore{
		{File: "internal/cache/cache.go", Line: 88, Analyzers: []string{"lockguard"}},
		{File: "internal/obs/logger.go", Line: 12, Analyzers: []string{"atomicmix", "obscost"}},
	}
	var buf bytes.Buffer
	if _, err := writeStale(&buf, stale, true); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "stale.json"), buf.Bytes())
}

// TestStaleText checks the human form and the exit codes of stale mode.
func TestStaleText(t *testing.T) {
	stale := []analysis.StaleIgnore{
		{File: "internal/cache/cache.go", Line: 88, Analyzers: []string{"lockguard"}},
	}
	var buf bytes.Buffer
	code, err := writeStale(&buf, stale, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("stale directives must exit 1, got %d", code)
	}
	want := "internal/cache/cache.go:88: stale //lint:ignore lockguard: suppresses no finding\n"
	if buf.String() != want {
		t.Errorf("stale text = %q, want %q", buf.String(), want)
	}
	code, err = writeStale(&buf, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("no stale directives must exit 0, got %d", code)
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/hhclint -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
