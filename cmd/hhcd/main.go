// Command hhcd is the disjoint-path query daemon: it serves the
// length-prefixed wire protocols of internal/pathsvc over TCP — JSON v1
// and binary v2, detected per frame, so clients of either version (and
// mixed-version frames on one connection) are answered in kind — backed by
// the container cache, with bounded admission, per-request deadlines,
// in-flight coalescing of identical queries, and width degradation under
// queue pressure. SIGINT/SIGTERM triggers a graceful drain: in-flight and
// queued requests are answered before the process exits 0.
//
// With -peers, N hhcd processes form one logical sharded service: a
// consistent-hash ring over the canonical query key assigns each pair an
// owning peer, non-owned queries are forwarded there over the binary wire
// (at most one hop — the frame's hop-guard bit), and an unreachable owner
// degrades to a correct local answer instead of an error.
//
// Usage:
//
//	hhcd -m 4                                # serve on the default address
//	hhcd -m 4 -addr :9091 -listen :6060      # plus live /metrics and pprof
//	hhcd -m 3 -queue 64 -admission block     # backpressure instead of shedding
//	hhcd -m 3 -addr 127.0.0.1:9101 \
//	  -peers 127.0.0.1:9101,127.0.0.1:9102 -self 0   # one peer of a 2-shard cluster
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pathsvc"
)

func main() {
	m := flag.Int("m", 4, "son-cube dimension m (1..6)")
	addr := flag.String("addr", "127.0.0.1:9091", "TCP address to serve path queries on")
	workers := flag.Int("workers", 0, "construction workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", pathsvc.DefaultQueueDepth, "admission queue depth")
	admission := flag.String("admission", "reject", "full-queue policy: reject|block")
	retryAfter := flag.Duration("retry-after", pathsvc.DefaultRetryAfter, "back-off hint sent with overload rejections")
	timeout := flag.Duration("timeout", pathsvc.DefaultRequestTimeout, "default per-request deadline")
	shed := flag.Float64("shed", pathsvc.DefaultShedThreshold, "queue-fill fraction beyond which responses degrade (0..1]")
	degradeK := flag.Int("k", pathsvc.DefaultDegradeWidth, "container width served while degraded")
	capacity := flag.Int("cache-capacity", cache.DefaultCapacity, "max cached containers (<0 = unbounded)")
	canon := flag.String("canon", "exact", "cache canonicalization: exact|full|off")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	duration := flag.Duration("duration", 0, "serve for this long then drain and exit (0 = until signaled)")
	logPath := flag.String("log", "", "write structured JSONL logs (connection events, failed requests) to this file; '-' = stderr")
	slow := flag.Duration("slow", 0, "force-retain requests at least this slow in the /debug/requests flight recorder (0 = off)")
	peers := flag.String("peers", "", "comma-separated cluster peer list (host:port,...), identical on every peer; empty = single-node")
	self := flag.Int("self", 0, "this process's index into -peers")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	obsf.RegisterListenFlag(flag.CommandLine)
	flag.Parse()

	err := run(flag.Args(), obsf, *m, *addr, *workers, *queue, *admission,
		*retryAfter, *timeout, *shed, *degradeK, *capacity, *canon, *drain, *duration,
		*logPath, *slow, *peers, *self)
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcd:", err)
		os.Exit(1)
	}
}

func run(args []string, obsf *cliutil.Obs, m int, addr string, workers, queue int,
	admission string, retryAfter, timeout time.Duration, shed float64, degradeK, capacity int,
	canon string, drain, duration time.Duration, logPath string, slow time.Duration,
	peersSpec string, self int) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(m); err != nil {
		return err
	}
	policy, err := pathsvc.ParseAdmission(admission)
	if err != nil {
		return err
	}
	mode, err := cache.ParseCanon(canon)
	if err != nil {
		return err
	}
	// Cluster config validates before anything binds or prints: a malformed
	// -peers list must fail fast with the typed cluster error, never after
	// the daemon looks healthy.
	var clu *cluster.Cluster
	if peersSpec != "" {
		peers, perr := cluster.ParsePeers(peersSpec)
		if perr != nil {
			return fmt.Errorf("-peers: %w", perr)
		}
		if clu, err = cluster.New(cluster.Config{Peers: peers, Self: self}); err != nil {
			return fmt.Errorf("-peers/-self: %w", err)
		}
		defer clu.Close()
	} else if self != 0 {
		return fmt.Errorf("-self %d given without -peers", self)
	}
	// -slow only matters through the flight recorder, which needs the obs
	// layer: asking for it turns the layer on.
	if slow > 0 {
		obsf.Force = true
	}
	if err := obsf.Activate(); err != nil {
		return err
	}
	var logger *obs.Logger
	switch logPath {
	case "":
	case "-":
		logger = obs.NewLogger(os.Stderr, obs.LevelInfo)
	default:
		f, cerr := os.Create(logPath)
		if cerr != nil {
			return fmt.Errorf("-log: %w", cerr)
		}
		defer f.Close()
		logger = obs.NewLogger(f, obs.LevelInfo)
	}
	cfg := pathsvc.Config{
		M:              m,
		Workers:        workers,
		QueueDepth:     queue,
		Admission:      policy,
		RetryAfter:     retryAfter,
		DefaultTimeout: timeout,
		ShedThreshold:  shed,
		DegradeWidth:   degradeK,
		Cache:          cache.Options{Capacity: capacity, Canon: mode},
		Reg:            obsf.Registry,
		Logger:         logger,
		Requests:       obsf.EnableRequests(slow),
	}
	if clu != nil {
		// A conditional assignment, not cfg.Router = clu unconditionally: a
		// nil *Cluster in a non-nil interface would look like a live router.
		cfg.Router = clu
		cfg.Peer = clu.Self()
		if obsf.Registry != nil {
			clu.Register(obsf.Registry)
		}
	}
	srv, err := pathsvc.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-addr %s: %w", addr, err)
	}
	if clu != nil {
		// Fleet view: membership, ring shares, breaker state, forward
		// counters, and latency exemplars, scraped by hhcobs -cluster.
		obsf.Handle("/debug/cluster", clu.DebugHandler(srv))
	}
	if _, err := obsf.StartListener("hhcd"); err != nil {
		_ = ln.Close()
		return err
	}
	// The banner is the "healthy" signal scripts wait for, so it prints
	// only after every startup step that can fail — config validation, the
	// query listener, the obs listener — has succeeded.
	banner := fmt.Sprintf("hhcd: serving path queries on %s (m=%d, width=%d, queue=%d, admission=%s, proto=v1..v%d)",
		ln.Addr(), m, m+1, queue, policy, pathsvc.MaxProtocolVersion)
	if clu != nil {
		banner += ", " + clu.String()
	}
	fmt.Fprintln(os.Stderr, banner)

	// Drain on SIGINT/SIGTERM or after -duration, whichever comes first.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		if duration > 0 {
			select {
			case <-sig:
			case <-time.After(duration):
			}
		} else {
			<-sig
		}
		fmt.Fprintln(os.Stderr, "hhcd: draining (in-flight and queued requests will be answered)")
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hhcd: drain incomplete:", err)
		}
	}()

	err = srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "hhcd: drained: %s\n", srv.Counters())
	fmt.Fprintf(os.Stderr, "hhcd: cache: %s\n", srv.CacheSnapshot())
	if clu != nil {
		for _, ps := range clu.Status() {
			fmt.Fprintf(os.Stderr, "hhcd: peer %s: forwarded=%d errors=%d down=%v\n",
				ps.Addr, ps.Forwarded, ps.Errors, ps.Down)
		}
	}
	return err
}
