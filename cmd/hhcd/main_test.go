package main

import (
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHHCD compiles the daemon once per test binary into a temp dir.
func buildHHCD(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds the hhcd binary")
	}
	bin := filepath.Join(t.TempDir(), "hhcd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestStartupFailuresPrintNoBanner pins the startup ordering contract: the
// "serving path queries" banner is the healthy signal scripts wait for, so
// any startup failure — a malformed -peers list, a bad -self index, an
// unbindable -addr — must exit non-zero with a diagnostic and never emit
// the banner.
func TestStartupFailuresPrintNoBanner(t *testing.T) {
	bin := buildHHCD(t)

	// An occupied port: -addr collisions are the listener-failure case.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	busy := ln.Addr().String()

	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"malformed peers", []string{"-m", "2", "-peers", "a:1,,b:2"}, "bad peer list"},
		{"peer missing port", []string{"-m", "2", "-peers", "hostonly"}, "bad peer list"},
		{"duplicate peers", []string{"-m", "2", "-peers", "a:1,a:1"}, "bad peer list"},
		{"single peer", []string{"-m", "2", "-peers", "a:1"}, "bad peer list"},
		{"self out of range", []string{"-m", "2", "-peers", "a:1,b:2", "-self", "5"}, "out of range"},
		{"self without peers", []string{"-m", "2", "-self", "1"}, "without -peers"},
		{"addr in use", []string{"-m", "2", "-addr", busy}, busy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("hhcd %v exited 0; want startup failure\n%s", tc.args, out)
			}
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("hhcd did not run: %v", err)
			}
			if !strings.Contains(string(out), tc.wantErr) {
				t.Errorf("stderr does not mention %q:\n%s", tc.wantErr, out)
			}
			if strings.Contains(string(out), "serving path queries") {
				t.Errorf("banner printed despite startup failure:\n%s", out)
			}
		})
	}
}

// TestClusterBannerAfterHealthyStart pins the happy path: a valid cluster
// config serves, prints a banner naming the membership, and drains to exit
// 0 when its -duration elapses.
func TestClusterBannerAfterHealthyStart(t *testing.T) {
	bin := buildHHCD(t)
	// Reserve two loopback ports, release them, and hand them to the peers.
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peers := strings.Join(addrs, ",")
	out, err := exec.Command(bin, "-m", "2", "-addr", addrs[0],
		"-peers", peers, "-self", "0", "-duration", "300ms").CombinedOutput()
	if err != nil {
		t.Fatalf("clustered hhcd failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "serving path queries") {
		t.Errorf("no banner:\n%s", s)
	}
	if !strings.Contains(s, "cluster of 2 peers") {
		t.Errorf("banner does not describe the cluster:\n%s", s)
	}
	if !strings.Contains(s, "drained:") {
		t.Errorf("no drain summary:\n%s", s)
	}
}
