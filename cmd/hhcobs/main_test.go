package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// snapshotFile dumps a recorder with two fixed traces the way
// /debug/requests?format=json would.
func snapshotFile(t *testing.T) string {
	t.Helper()
	rt := obs.NewRequestTracer(4)
	rt.Record(&obs.RequestTrace{
		ID: "r1", Op: "paths", Start: 1000, Dur: 4_000_000,
		Attrs: []obs.Attr{obs.String("u", "0x0:0")},
		Spans: []*obs.ReqSpan{
			{Name: "admission", Start: 1000, Dur: 10_000},
			{Name: "exec", Start: 2000, Dur: 3_500_000, Children: []*obs.ReqSpan{
				{Name: "realize", Start: 2100, Dur: 3_000_000},
			}},
		},
	})
	rt.Record(&obs.RequestTrace{
		ID: "r2", Op: "paths", Start: 2000, Dur: 1_000_000, Code: "overload",
	})
	payload, err := json.MarshalIndent(rt.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return writeFile(t, "requests.json", string(payload))
}

func TestSnapshotInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{snapshotFile(t)}, 5, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"phase latency (ms)", "admission", "exec", "realize", "request"} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
	// Slowest-first: r1 (4ms) before r2 (1ms), with r2's outcome code shown.
	if !strings.Contains(text, "1. r1 paths 4.000ms ok") {
		t.Errorf("r1 not ranked slowest:\n%s", text)
	}
	if !strings.Contains(text, "2. r2 paths 1.000ms overload") {
		t.Errorf("r2 outcome missing:\n%s", text)
	}
}

// jsonlFile is a mirror-stream excerpt: two requests' flattened spans plus
// one construction span with no rid.
func jsonlFile(t *testing.T) string {
	t.Helper()
	lines := []string{
		`{"name":"request","start_ns":1000,"dur_ns":5000000,"attrs":{"rid":"m1","op":"paths","peer":"unit"}}`,
		`{"name":"exec","start_ns":1100,"dur_ns":4000000,"attrs":{"rid":"m1"}}`,
		`{"name":"request","start_ns":2000,"dur_ns":2000000,"attrs":{"rid":"m2","op":"paths","code":"overload"}}`,
		`{"name":"realize","start_ns":500,"dur_ns":700000,"attrs":{"u":"0x0:0"}}`,
	}
	return writeFile(t, "trace.jsonl", strings.Join(lines, "\n")+"\n")
}

func TestJSONLInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{jsonlFile(t)}, 1, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"request", "exec", "realize"} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
	// Regrouped by rid, ranked by duration, -top 1 keeps only m1; the
	// overload outcome rides the request span's code attr.
	if !strings.Contains(text, "1. m1 paths 5.000ms ok  [peer=unit]") {
		t.Errorf("mirror spans not regrouped into m1:\n%s", text)
	}
	if strings.Contains(text, "\n  2. ") {
		t.Errorf("-top 1 printed more than one tree:\n%s", text)
	}
}

func TestMixedInputsAndMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{snapshotFile(t), jsonlFile(t)}, 3, true); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "| phase") {
		t.Errorf("-md did not render a markdown table:\n%s", text)
	}
	// Both sources rank together: m1 (5ms) beats r1 (4ms).
	if !strings.Contains(text, "1. m1") || !strings.Contains(text, "2. r1") {
		t.Errorf("snapshot and JSONL traces not merged into one ranking:\n%s", text)
	}
}

func TestBadInputs(t *testing.T) {
	if err := run(&bytes.Buffer{}, nil, 5, false); err == nil {
		t.Error("no input files accepted")
	}
	if err := run(&bytes.Buffer{}, []string{jsonlFile(t)}, 0, false); err == nil {
		t.Error("-top 0 accepted")
	}
	empty := writeFile(t, "empty.jsonl", "\n")
	if err := run(&bytes.Buffer{}, []string{empty}, 5, false); err == nil {
		t.Error("empty input accepted")
	}
	junk := writeFile(t, "junk.jsonl", `{"name":"ok","dur_ns":1}`+"\nnot json\n")
	err := run(&bytes.Buffer{}, []string{junk}, 5, false)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("junk line error %v does not carry path:line", err)
	}
	if err := run(&bytes.Buffer{}, []string{filepath.Join(t.TempDir(), "missing")}, 5, false); err == nil {
		t.Error("missing file accepted")
	}
}

// TestEndToEndWithRecorder round-trips live instrumentation: a recorder
// mirrors onto a flat tracer streaming JSONL, and hhcobs reads both that
// stream and the recorder's own snapshot dump.
func TestEndToEndWithRecorder(t *testing.T) {
	var stream bytes.Buffer
	flat := obs.NewTracer(16)
	flat.StreamTo(&stream)
	rt := obs.NewRequestTracer(4)
	rt.Mirror(flat)
	for i := 0; i < 3; i++ {
		q := rt.StartRequest("paths", "", obs.String("peer", "e2e"))
		sp := q.StartSpan("exec")
		sp.End()
		q.Finish("")
	}
	flat.StreamTo(nil) // drain barrier: the stream is complete past here

	snap, err := json.Marshal(rt.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	snapPath := writeFile(t, "requests.json", string(snap))
	tracePath := writeFile(t, "trace.jsonl", stream.String())

	for _, paths := range [][]string{{snapPath}, {tracePath}} {
		var out bytes.Buffer
		if err := run(&out, paths, 5, false); err != nil {
			t.Fatalf("%v: %v", paths, err)
		}
		if !strings.Contains(out.String(), "exec") || !strings.Contains(out.String(), "slowest requests") {
			t.Errorf("%v: incomplete report:\n%s", paths, out.String())
		}
		// All three live requests survive into the offline ranking.
		for _, rid := range []string{"r1", "r2", "r3"} {
			if !strings.Contains(out.String(), fmt.Sprintf(" %s paths", rid)) {
				t.Errorf("%v: request %s absent from report:\n%s", paths, rid, out.String())
			}
		}
	}
}

// fakePeer serves the two debug endpoints a -cluster scrape reads, backed
// by a canned recorder snapshot.
func fakePeer(t *testing.T, snap obs.RequestsSnapshot) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			t.Error(err)
		}
	})
	mux.HandleFunc("/debug/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"interval_ns":1000000000,"capacity":60,"points":[],`+
			`"summary":{"pathsvc_request_seconds":{"count":10,"rate":5,"mean":0.002,"p50":0.002,"p95":0.003,"p99":0.004}}}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestClusterScrape stitches a forwarded request across two fake peers:
// the requester's tree (forward span, no origin) joins the owner's
// origin-tagged fragment by rid.
func TestClusterScrape(t *testing.T) {
	ownerSnap := obs.RequestsSnapshot{Total: 1, Recent: []*obs.RequestTrace{{
		ID: "r9", Op: "paths", Start: 5000, Dur: 400_000, Origin: "peer-a:9101",
		Spans: []*obs.ReqSpan{
			{Name: "queue", Start: 5100, Dur: 50_000},
			{Name: "exec", Start: 5200, Dur: 300_000},
		},
	}}}
	reqSnap := obs.RequestsSnapshot{Total: 1, Recent: []*obs.RequestTrace{{
		ID: "r9", Op: "paths", Start: 1000, Dur: 900_000,
		Spans: []*obs.ReqSpan{
			{Name: "admission", Start: 1000, Dur: 5_000},
			{Name: "forward", Start: 2000, Dur: 700_000},
		},
	}}}
	reqAddr := fakePeer(t, reqSnap)
	ownerAddr := fakePeer(t, ownerSnap)

	var out bytes.Buffer
	err := runCluster(&out, nil, reqAddr+","+ownerAddr, 5, false, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"fleet", "2.000", "4.000", "phase latency (ms)",
		"stitched cross-peer traces (1)",
		"r9  " + reqAddr + " -> " + ownerAddr,
		"remote_queue=50µs", "remote_exec=300µs", "wire=350µs",
		"remote", "forward",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster report lacks %q:\n%s", want, text)
		}
	}
}

// TestClusterScrapeRejectsFiles pins the mode split: -cluster and
// positional inputs are mutually exclusive.
func TestClusterScrapeRejectsFiles(t *testing.T) {
	var out bytes.Buffer
	if err := runCluster(&out, []string{"x.json"}, "h:1", 5, false, time.Second); err == nil {
		t.Fatal("runCluster accepted positional files")
	}
}
