// Command hhcobs aggregates the observability artifacts the other tools
// produce — -trace JSON Lines span streams and /debug/requests JSON dumps
// — into a per-phase latency percentile table and the slowest request
// span trees. It answers "where did the time go" offline, after a run.
//
// Usage:
//
//	hhcobs trace.jsonl
//	hhcobs requests.json                 # curl host:6060/debug/requests?format=json
//	hhcobs -top 3 trace.jsonl requests.json
//
// Input kinds are autodetected per file: a whole-file JSON object with the
// flight-recorder snapshot shape, otherwise one span object per line.
// Request trees dumped by the recorder are replayed through the same top-K
// retention the live server uses; flat spans carrying a rid attribute (the
// mirror stream) are regrouped into per-request trees by that id.
//
// Like hhclint, hhcobs takes positional arguments (the input files) and
// has no observability flags of its own: it is a reporting tool, not a
// workload. It exits non-zero when the inputs yield no samples, so CI can
// assert that an instrumented run actually produced telemetry.
//
// With -cluster, hhcobs turns from an offline reducer into a fleet
// scraper: it polls every peer's /debug/requests and /debug/series live,
// joins the two halves of each forwarded request by rid (the requester's
// tree holds the forward span, the owner's tree is origin-tagged), and
// prints the stitched cross-peer trees with the remote queue/exec/wire
// decomposition next to the fleet-wide phase percentiles:
//
//	hhcobs -cluster 127.0.0.1:6061,127.0.0.1:6062,127.0.0.1:6063
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	top := flag.Int("top", 5, "request span trees to print, slowest first")
	md := flag.Bool("md", false, "render the phase table as markdown")
	clusterSpec := flag.String("cluster", "",
		"comma-separated peer debug addresses (host:port,...) to scrape live and stitch cross-peer traces from")
	timeout := flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout with -cluster")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hhcobs [-top k] [-md] <trace.jsonl | requests.json>...\n"+
				"       hhcobs [-top k] [-md] -cluster host:port,host:port,...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	var err error
	if *clusterSpec != "" {
		err = runCluster(os.Stdout, flag.Args(), *clusterSpec, *top, *md, *timeout)
	} else {
		err = run(os.Stdout, flag.Args(), *top, *md)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcobs:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, paths []string, top int, md bool) error {
	if len(paths) == 0 {
		return errors.New("no input files (want -trace JSONL or /debug/requests JSON dumps)")
	}
	if top < 1 {
		return fmt.Errorf("-top %d out of range: must be positive", top)
	}
	var traces []*obs.RequestTrace
	var spans []obs.Span
	for _, path := range paths {
		ts, ss, err := parseFile(path)
		if err != nil {
			return err
		}
		traces = append(traces, ts...)
		spans = append(spans, ss...)
	}
	traces = append(traces, regroup(spans)...)

	phases := phaseSamples(traces, spans)
	if len(phases) == 0 {
		return errors.New("inputs contain no spans or request traces")
	}
	if err := phaseTable(phases).renderAs(w, md); err != nil {
		return err
	}
	return printSlowest(w, traces, top)
}

// peerScrape is one peer's live telemetry: its retained request trees and
// the windowed series the fleet table summarizes. id is the peer's
// cluster identity (its serve address, from /debug/cluster) — the name
// forwarded trees carry in Origin — falling back to the scraped debug
// address on a single-node server; stitching keys peers by it.
type peerScrape struct {
	addr   string
	id     string
	snap   obs.RequestsSnapshot
	traces []*obs.RequestTrace
	series obs.SeriesSnapshot
}

// runCluster scrapes every peer, renders the fleet summary and the
// fleet-wide phase percentiles, then stitches cross-peer traces by rid.
func runCluster(w io.Writer, args []string, spec string, top int, md bool, timeout time.Duration) error {
	if len(args) != 0 {
		return errors.New("-cluster scrapes peers live; positional input files do not combine with it")
	}
	if top < 1 {
		return fmt.Errorf("-top %d out of range: must be positive", top)
	}
	var addrs []string
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return fmt.Errorf("-cluster %q: empty peer entry", spec)
		}
		addrs = append(addrs, p)
	}
	client := &http.Client{Timeout: timeout}
	peers := make([]peerScrape, 0, len(addrs))
	byPeer := make(map[string][]*obs.RequestTrace, len(addrs))
	var all []*obs.RequestTrace
	for _, addr := range addrs {
		ps := peerScrape{addr: addr}
		base := "http://" + addr
		if err := scrapeJSON(client, base+"/debug/requests?format=json", &ps.snap); err != nil {
			return fmt.Errorf("%s/debug/requests: %w (is the peer running with -listen and -slow or tracing on?)", base, err)
		}
		if err := scrapeJSON(client, base+"/debug/series", &ps.series); err != nil {
			return fmt.Errorf("%s/debug/series: %w", base, err)
		}
		// /debug/cluster names the peer as the fleet knows it (its serve
		// address, which Origin tags carry); absent on single-node servers.
		ps.id = addr
		var ident struct {
			Self string `json:"self"`
		}
		if err := scrapeJSON(client, base+"/debug/cluster", &ident); err == nil && ident.Self != "" {
			ps.id = ident.Self
		}
		ps.traces = dedupTraces(ps.snap)
		byPeer[ps.id] = ps.traces
		all = append(all, ps.traces...)
		peers = append(peers, ps)
	}

	if err := fleetTable(peers).renderAs(w, md); err != nil {
		return err
	}
	phases := phaseSamples(all, nil)
	if len(phases) == 0 {
		return errors.New("no peer retained any request trace (drive load with rids first)")
	}
	if err := phaseTable(phases).renderAs(w, md); err != nil {
		return err
	}
	return printStitched(w, obs.StitchTraces(byPeer), top)
}

func scrapeJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// fleetTable is one row per scraped peer: totals from the flight recorder
// and the current qps/latency window from the series ring.
func fleetTable(peers []peerScrape) table {
	tb := stats.NewTable("fleet", "peer", "requests", "errored", "retained", "qps", "p50(ms)", "p99(ms)")
	for _, ps := range peers {
		qps, p50, p99 := 0.0, 0.0, 0.0
		if n := len(ps.series.Points); n > 0 {
			last := ps.series.Points[n-1]
			qps = last.Rates["pathsvc_completed_total"]
		}
		// The summary keys histograms by registry name; the _window family
		// is a gauge set and never appears here.
		if h, ok := ps.series.Summary["pathsvc_request_seconds"]; ok {
			p50, p99 = h.P50*1e3, h.P99*1e3
		}
		tb.AddRow(ps.id, ps.snap.Total, ps.snap.Errored, len(ps.traces), qps, p50, p99)
	}
	return table{tb}
}

// printStitched renders the joined cross-peer trees, slowest forward
// first, with the remote decomposition the owner relayed: how much of the
// forward span was the owner's queue wait, its execution, and the wire.
func printStitched(w io.Writer, stitched []*obs.StitchedTrace, top int) error {
	fmt.Fprintf(w, "stitched cross-peer traces (%d)\n", len(stitched))
	if len(stitched) == 0 {
		fmt.Fprint(w, "  none (no rid present on both sides of a forward)\n")
		return nil
	}
	rows := stitched
	if len(rows) > top {
		rows = rows[:top]
	}
	for i, st := range rows {
		fmt.Fprintf(w, "  %d. %s  %s -> %s  total=%s forward=%s remote_queue=%s remote_exec=%s wire=%s\n",
			i+1, st.RID, st.RequesterPeer, st.OwnerPeer,
			time.Duration(st.Root.Dur), time.Duration(st.ForwardNS),
			time.Duration(st.RemoteQueueNS), time.Duration(st.RemoteExecNS),
			time.Duration(st.WireNS()))
		var walk func(ss []*obs.ReqSpan, indent string)
		walk = func(ss []*obs.ReqSpan, indent string) {
			for _, s := range ss {
				fmt.Fprintf(w, "%s%s %s%s\n", indent, s.Name, fmtMS(s.Dur), fmtAttrs(s.Attrs))
				walk(s.Children, indent+"  ")
			}
		}
		walk(st.Root.Spans, "     ")
	}
	return nil
}

// parseFile reads one input and detects its kind: a whole-file flight
// recorder snapshot, or one flat span per line.
func parseFile(path string) ([]*obs.RequestTrace, []obs.Span, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(strings.TrimSpace(string(raw))) == 0 {
		return nil, nil, fmt.Errorf("%s: empty input", path)
	}
	// Snapshot detection: a single JSON object carrying the recorder's
	// bucket keys. A JSONL file never parses as one value (multiple
	// top-level objects), so a successful whole-file parse plus the
	// "recent" key is decisive.
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err == nil {
		if _, ok := probe["recent"]; ok {
			var snap obs.RequestsSnapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			return dedupTraces(snap), nil, nil
		}
	}
	var spans []obs.Span
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: not a span line: %w", path, line, err)
		}
		if s.Name == "" {
			return nil, nil, fmt.Errorf("%s:%d: span has no name", path, line)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return nil, spans, nil
}

// dedupTraces flattens a snapshot's buckets into unique traces — the same
// request appears in several buckets (recent + slowest + errors).
func dedupTraces(snap obs.RequestsSnapshot) []*obs.RequestTrace {
	seen := map[string]bool{}
	var out []*obs.RequestTrace
	for _, bucket := range [][]*obs.RequestTrace{snap.Recent, snap.Slowest, snap.Errors, snap.Slow} {
		for _, tr := range bucket {
			key := fmt.Sprintf("%s/%d", tr.ID, tr.Start)
			if !seen[key] {
				seen[key] = true
				out = append(out, tr)
			}
		}
	}
	return out
}

// regroup reassembles per-request trees from the mirror stream: flat spans
// carrying a rid attribute, with a "request" span per request as the root.
// Phase spans for a rid whose root never appeared (truncated file) still
// form a tree, just without op/outcome.
func regroup(spans []obs.Span) []*obs.RequestTrace {
	byID := map[string]*obs.RequestTrace{}
	var order []string
	get := func(rid string) *obs.RequestTrace {
		tr := byID[rid]
		if tr == nil {
			tr = &obs.RequestTrace{ID: rid}
			byID[rid] = tr
			order = append(order, rid)
		}
		return tr
	}
	for _, s := range spans {
		attrs := map[string]string{}
		for _, a := range s.Attrs {
			attrs[a.Key] = a.Value
		}
		rid := attrs["rid"]
		if rid == "" {
			continue
		}
		if s.Name == "request" {
			tr := get(rid)
			tr.Op, tr.Start, tr.Dur, tr.Code = attrs["op"], s.Start, s.Dur, attrs["code"]
			for _, a := range s.Attrs {
				if a.Key != "rid" && a.Key != "op" && a.Key != "code" {
					tr.Attrs = append(tr.Attrs, a)
				}
			}
			continue
		}
		var kept []obs.Attr
		for _, a := range s.Attrs {
			if a.Key != "rid" {
				kept = append(kept, a)
			}
		}
		get(rid).Spans = append(get(rid).Spans, &obs.ReqSpan{
			Name: s.Name, Start: s.Start, Dur: s.Dur, Attrs: kept,
		})
	}
	out := make([]*obs.RequestTrace, 0, len(order))
	for _, rid := range order {
		out = append(out, byID[rid])
	}
	return out
}

// phaseSamples pools span durations (ms) by phase name: every span of every
// request tree (children included) plus every flat span. The whole-request
// duration pools under "request".
func phaseSamples(traces []*obs.RequestTrace, spans []obs.Span) map[string][]float64 {
	out := map[string][]float64{}
	add := func(name string, durNS int64) {
		out[name] = append(out[name], float64(durNS)/1e6)
	}
	var walk func(ss []*obs.ReqSpan)
	walk = func(ss []*obs.ReqSpan) {
		for _, s := range ss {
			add(s.Name, s.Dur)
			walk(s.Children)
		}
	}
	for _, tr := range traces {
		add("request", tr.Dur)
		walk(tr.Spans)
	}
	for _, s := range spans {
		// Mirror-stream spans were already counted through their regrouped
		// trees; counting them again would double every sample.
		if hasAttr(s.Attrs, "rid") {
			continue
		}
		add(s.Name, s.Dur)
	}
	return out
}

func hasAttr(attrs []obs.Attr, key string) bool {
	for _, a := range attrs {
		if a.Key == key {
			return true
		}
	}
	return false
}

// table wraps stats.Table with the markdown/plain choice.
type table struct{ *stats.Table }

func (t table) renderAs(w io.Writer, md bool) error {
	if md {
		return t.RenderMarkdown(w)
	}
	return t.Render(w)
}

func phaseTable(phases map[string][]float64) table {
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	tb := stats.NewTable("phase latency (ms)", "phase", "count", "p50", "p95", "p99", "max")
	for _, name := range names {
		xs := phases[name]
		ps := stats.Percentiles(xs, 50, 95, 99)
		tb.AddRow(name, len(xs), ps[0], ps[1], ps[2], stats.SummarizeFloats(xs).Max)
	}
	return table{tb}
}

// printSlowest renders the top slowest request trees, reusing the live
// recorder's retention heap so offline ranking matches /debug/requests.
func printSlowest(w io.Writer, traces []*obs.RequestTrace, top int) error {
	if len(traces) == 0 {
		return nil
	}
	rt := obs.NewRequestTracer(top)
	for _, tr := range traces {
		rt.Record(tr)
	}
	fmt.Fprintf(w, "slowest requests (%d of %d)\n", min(top, len(traces)), len(traces))
	for i, tr := range rt.Snapshot().Slowest {
		outcome := "ok"
		if tr.Code != "" {
			outcome = tr.Code
		}
		fmt.Fprintf(w, "  %d. %s %s %s %s%s\n",
			i+1, tr.ID, tr.Op, fmtMS(tr.Dur), outcome, fmtAttrs(tr.Attrs))
		var walk func(ss []*obs.ReqSpan, indent string)
		walk = func(ss []*obs.ReqSpan, indent string) {
			for _, s := range ss {
				fmt.Fprintf(w, "%s%s %s%s\n", indent, s.Name, fmtMS(s.Dur), fmtAttrs(s.Attrs))
				walk(s.Children, indent+"  ")
			}
		}
		walk(tr.Spans, "     ")
	}
	return nil
}

func fmtMS(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}

func fmtAttrs(attrs []obs.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	sort.Strings(parts)
	return "  [" + strings.Join(parts, " ") + "]"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
