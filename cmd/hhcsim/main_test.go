package main

import (
	"bytes"
	"strings"
	"testing"
)

func baseOpts() simOpts {
	return simOpts{
		m: 2, mode: "single", flows: 4, msgs: 5, flits: 16,
		rate: 0.01, seed: 1, switching: "saf", pattern: "uniform",
	}
}

func TestRunAllModes(t *testing.T) {
	for _, mode := range []string{"single", "multi", "fault-aware", "adaptive"} {
		o := baseOpts()
		o.mode = mode
		var buf bytes.Buffer
		if err := run(&buf, nil, o); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if !strings.Contains(buf.String(), "delivered        20") {
			t.Fatalf("mode %s output:\n%s", mode, buf.String())
		}
	}
}

func TestRunSwitchAndPattern(t *testing.T) {
	o := baseOpts()
	o.switching = "cut-through"
	o.pattern = "hotspot"
	var buf bytes.Buffer
	if err := run(&buf, nil, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "switch=cut-through pattern=hotspot") {
		t.Fatalf("header wrong:\n%s", buf.String())
	}
}

func TestRunWithFaults(t *testing.T) {
	o := baseOpts()
	o.m = 3
	o.mode = "multi"
	o.faults = 3
	o.linkFaults = 2
	var buf bytes.Buffer
	if err := run(&buf, nil, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped          0") {
		t.Fatalf("container guarantee broken in CLI:\n%s", buf.String())
	}
}

func TestParseErrors(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.mode = "warp"
	if err := run(&buf, nil, o); err == nil {
		t.Error("bad mode accepted")
	}
	o = baseOpts()
	o.switching = "quantum"
	if err := run(&buf, nil, o); err == nil {
		t.Error("bad switching accepted")
	}
	o = baseOpts()
	o.pattern = "chaos"
	if err := run(&buf, nil, o); err == nil {
		t.Error("bad pattern accepted")
	}
	o = baseOpts()
	o.flows = 0
	if err := run(&buf, nil, o); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunArgValidation: trailing positional args are rejected and -m is
// validated up front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, baseOpts()); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
	o := baseOpts()
	o.m = 42
	if err := run(&buf, nil, o); err == nil ||
		!strings.Contains(err.Error(), "1..6") {
		t.Errorf("-m validation not actionable: %v", err)
	}
}
