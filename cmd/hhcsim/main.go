// Command hhcsim runs the discrete-event store-and-forward simulator on a
// hierarchical hypercube and prints delivery metrics. It exposes every knob
// of netsim.Config, so individual scenario points of figure E10 can be
// reproduced and explored.
//
// Usage:
//
//	hhcsim -m 3 -mode multi -flows 24 -msgs 60 -flits 256 -rate 0.001
//	hhcsim -m 3 -mode fault-aware -faults 3
//	hhcsim -m 4 -listen :6060          # live /metrics, /debug/vars, pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/netsim"
	"repro/internal/obs"
)

func main() {
	m := flag.Int("m", 3, "son-cube dimension m (1..6)")
	mode := flag.String("mode", "single", "routing mode: single|multi|fault-aware")
	flows := flag.Int("flows", 24, "number of concurrent flows")
	msgs := flag.Int("msgs", 60, "messages per flow")
	flits := flag.Int("flits", 256, "message size in flits")
	rate := flag.Float64("rate", 0.001, "mean messages per cycle per flow")
	faults := flag.Int("faults", 0, "random faulty nodes")
	linkFaults := flag.Int("link-faults", 0, "random faulty links")
	seed := flag.Int64("seed", 1, "simulation seed")
	switching := flag.String("switch", "saf", "switching: saf|cut-through")
	pattern := flag.String("pattern", "uniform", "traffic: uniform|hotspot|complement|bit-reverse")
	perflow := flag.Bool("perflow", true, "print the per-flow latency percentile table")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	obsf.RegisterListenFlag(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	serving := false
	if err == nil {
		var addr string
		addr, err = obsf.StartListener("hhcsim")
		serving = addr != ""
	}
	opts := simOpts{
		m: *m, mode: *mode, flows: *flows, msgs: *msgs, flits: *flits,
		rate: *rate, faults: *faults, linkFaults: *linkFaults, seed: *seed,
		switching: *switching, pattern: *pattern, perflow: *perflow,
		reg: obsf.Registry, tracer: obsf.Tracer,
	}
	if err == nil {
		err = run(os.Stdout, flag.Args(), opts)
	}
	if err == nil && serving {
		// Keep the endpoints scrapeable after the run; Ctrl-C exits
		// (obsf.Close shuts the listener down).
		fmt.Fprintln(os.Stderr, "hhcsim: run complete, still serving (Ctrl-C to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcsim:", err)
		os.Exit(1)
	}
}

// simOpts carries the parsed flag values.
type simOpts struct {
	m, flows, msgs, flits, faults, linkFaults int
	rate                                      float64
	seed                                      int64
	mode, switching, pattern                  string
	perflow                                   bool
	reg                                       *obs.Registry
	tracer                                    *obs.Tracer
}

func parseMode(s string) (netsim.RoutingMode, error) {
	switch strings.ToLower(s) {
	case "single", "single-path":
		return netsim.SinglePath, nil
	case "multi", "multi-path", "stripe":
		return netsim.MultiPathStripe, nil
	case "fault-aware", "faultaware":
		return netsim.FaultAwareSingle, nil
	case "adaptive", "adaptive-local":
		return netsim.AdaptiveLocal, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want single|multi|fault-aware|adaptive)", s)
	}
}

func parseSwitching(s string) (netsim.Switching, error) {
	switch strings.ToLower(s) {
	case "saf", "store-and-forward", "":
		return netsim.StoreAndForward, nil
	case "ct", "cut-through", "cutthrough":
		return netsim.CutThrough, nil
	default:
		return 0, fmt.Errorf("unknown switching %q (want saf|cut-through)", s)
	}
}

func parsePattern(s string) (netsim.TrafficPattern, error) {
	switch strings.ToLower(s) {
	case "uniform", "":
		return netsim.PatternUniform, nil
	case "hotspot":
		return netsim.PatternHotspot, nil
	case "complement":
		return netsim.PatternComplement, nil
	case "bit-reverse", "bitreverse":
		return netsim.PatternBitReverse, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q (want uniform|hotspot|complement|bit-reverse)", s)
	}
}

func run(w io.Writer, args []string, o simOpts) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(o.m); err != nil {
		return err
	}
	mode, err := parseMode(o.mode)
	if err != nil {
		return err
	}
	sw, err := parseSwitching(o.switching)
	if err != nil {
		return err
	}
	pat, err := parsePattern(o.pattern)
	if err != nil {
		return err
	}
	cfg := netsim.Config{
		M:               o.m,
		Mode:            mode,
		Switch:          sw,
		Pattern:         pat,
		Flows:           o.flows,
		MessagesPerFlow: o.msgs,
		MessageFlits:    o.flits,
		ArrivalRate:     o.rate,
		FaultCount:      o.faults,
		LinkFaultCount:  o.linkFaults,
		Seed:            o.seed,
		Obs:             o.reg,
		Tracer:          o.tracer,
	}
	res, err := netsim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hhcsim m=%d mode=%s switch=%s pattern=%s flows=%d msgs/flow=%d flits=%d rate=%g faults=%d/%d seed=%d\n",
		o.m, mode, sw, pat, o.flows, o.msgs, o.flits, o.rate, o.faults, o.linkFaults, o.seed)
	fmt.Fprintf(w, "  generated        %d messages\n", res.Generated)
	fmt.Fprintf(w, "  delivered        %d\n", res.Delivered)
	fmt.Fprintf(w, "  dropped          %d (fault-blocked flows: %d)\n", res.Dropped, res.FaultBlocked)
	fmt.Fprintf(w, "  avg latency      %.1f cycles\n", res.AvgLatency)
	fmt.Fprintf(w, "  latency p50/p95/p99  %d / %d / %d cycles\n", res.P50Latency, res.P95Latency, res.P99Latency)
	fmt.Fprintf(w, "  max latency      %d cycles\n", res.MaxLatency)
	fmt.Fprintf(w, "  makespan         %d cycles\n", res.Makespan)
	fmt.Fprintf(w, "  goodput          %.3f flits/cycle\n", res.Throughput)
	fmt.Fprintf(w, "  avg path hops    %.2f\n", res.AvgPathHops)
	if o.perflow && len(res.PerFlow) > 0 {
		fmt.Fprintf(w, "\n  %-5s %9s %9s %7s %8s %8s %8s\n",
			"flow", "generated", "delivered", "dropped", "p50", "p95", "p99")
		for i, fs := range res.PerFlow {
			fmt.Fprintf(w, "  %-5d %9d %9d %7d %8d %8d %8d\n",
				i, fs.Generated, fs.Delivered, fs.Dropped, fs.P50Latency, fs.P95Latency, fs.P99Latency)
		}
	}
	return nil
}
