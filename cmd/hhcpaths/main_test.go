package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunContainer(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, "0x00:0", "0xff:5", "ascending", false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 node-disjoint paths (verified)") {
		t.Fatalf("container header missing:\n%.200s", out)
	}
	if strings.Count(out, "path ") != 4 {
		t.Fatalf("want 4 path sections:\n%.200s", out)
	}
	if !strings.Contains(out, "(external)") || !strings.Contains(out, "(local)") {
		t.Fatal("hop kinds not annotated")
	}
}

func TestRunRoute(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, "0x00:0", "0xff:5", "", true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "provably shortest") {
		t.Fatalf("route output wrong:\n%s", buf.String())
	}
}

func TestRunStrategies(t *testing.T) {
	for _, s := range []string{"ascending", "gray", "nearest"} {
		var buf bytes.Buffer
		if err := run(&buf, nil, 2, "0x0:0", "0xf:3", s, false, false); err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, "0x0:0", "0xf:3", "ascending", false, true); err != nil {
		t.Fatal(err)
	}
	var got struct {
		M     int        `json:"m"`
		Width int        `json:"width"`
		Paths [][]string `json:"paths"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if got.M != 2 || got.Width != 3 || len(got.Paths) != 3 {
		t.Fatalf("JSON content wrong: %+v", got)
	}
	for _, p := range got.Paths {
		if p[0] != "0x0:0" || p[len(p)-1] != "0xf:3" {
			t.Fatalf("path endpoints wrong: %v", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, "", "", "ascending", false, false); err == nil {
		t.Error("missing endpoints accepted")
	}
	if err := run(&buf, nil, 3, "0x0:0", "0x1:0", "bogus", false, false); err == nil {
		t.Error("bogus strategy accepted")
	}
	if err := run(&buf, nil, 3, "0x0:0", "0x0:0", "ascending", false, false); err == nil {
		t.Error("same node accepted")
	}
	if err := run(&buf, nil, 3, "junk", "0x1:0", "ascending", false, false); err == nil {
		t.Error("bad source accepted")
	}
	if err := run(&buf, nil, 3, "0x1:0", "junk", "ascending", false, false); err == nil {
		t.Error("bad destination accepted")
	}
	if err := run(&buf, nil, 99, "0x1:0", "0x2:0", "ascending", false, false); err == nil {
		t.Error("bad m accepted")
	}
}

// TestRunArgValidation: trailing positional arguments are rejected with a
// usage error instead of being silently ignored, and -m is validated up
// front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"stray"}, 3, "0x0:0", "0x1:0", "ascending", false, false)
	if err == nil {
		t.Fatal("trailing args accepted")
	}
	if !strings.Contains(err.Error(), "stray") {
		t.Errorf("error does not name the stray argument: %v", err)
	}
	err = run(&buf, nil, 0, "0x0:0", "0x1:0", "ascending", false, false)
	if err == nil {
		t.Fatal("m=0 accepted")
	}
	if !strings.Contains(err.Error(), "-m") || !strings.Contains(err.Error(), "1..6") {
		t.Errorf("-m error not actionable: %v", err)
	}
}
