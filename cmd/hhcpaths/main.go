// Command hhcpaths constructs the (m+1)-wide node-disjoint container
// between two nodes of a hierarchical hypercube and prints every path,
// verified. With -route it prints a single shortest path instead.
//
// Usage:
//
//	hhcpaths -m 3 -u 0x00:0 -v 0xff:5
//	hhcpaths -m 4 -u 0x0001:2 -v 0xbeef:7 -strategy nearest
//	hhcpaths -m 3 -u 0x00:0 -v 0xff:5 -route
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hhc"
)

func main() {
	m := flag.Int("m", 3, "son-cube dimension m (1..6)")
	uSpec := flag.String("u", "", "source node x:y")
	vSpec := flag.String("v", "", "destination node x:y")
	strategy := flag.String("strategy", "ascending", "cyclic-order strategy: ascending|gray|nearest")
	route := flag.Bool("route", false, "print one shortest path instead of the disjoint container")
	jsonOut := flag.Bool("json", false, "emit the container as JSON for external tooling")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *m, *uSpec, *vSpec, *strategy, *route, *jsonOut)
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcpaths:", err)
		os.Exit(1)
	}
}

func parseStrategy(s string) (core.OrderStrategy, error) {
	switch strings.ToLower(s) {
	case "ascending", "":
		return core.OrderAscending, nil
	case "gray":
		return core.OrderGray, nil
	case "nearest":
		return core.OrderNearest, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want ascending|gray|nearest)", s)
	}
}

func run(w io.Writer, args []string, m int, uSpec, vSpec, strategyName string, route, jsonOut bool) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(m); err != nil {
		return err
	}
	g, err := hhc.New(m)
	if err != nil {
		return err
	}
	if uSpec == "" || vSpec == "" {
		return fmt.Errorf("both -u and -v are required (format x:y, e.g. 0x2a:3)")
	}
	u, err := g.ParseNode(uSpec)
	if err != nil {
		return err
	}
	v, err := g.ParseNode(vSpec)
	if err != nil {
		return err
	}

	if route {
		p, info, err := g.RouteEx(u, v)
		if err != nil {
			return err
		}
		optimal := "heuristic"
		if info.Exact {
			optimal = "provably shortest"
		}
		fmt.Fprintf(w, "route %s -> %s: %d hops (%d external, %d local; %s)\n",
			g.FormatNode(u), g.FormatNode(v), len(p)-1, info.ExternalHops, info.LocalHops, optimal)
		printPath(w, g, p)
		return nil
	}

	strat, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	paths, err := core.DisjointPathsOpt(g, u, v, core.Options{Order: strat})
	if err != nil {
		return err
	}
	if err := core.VerifyContainer(g, u, v, paths); err != nil {
		return fmt.Errorf("internal verification failed: %w", err)
	}
	if jsonOut {
		return emitJSON(w, g, u, v, paths)
	}
	dist, _, err := g.Distance(u, v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "container %s -> %s: %d node-disjoint paths (verified), distance %d, max length %d, bound %d\n",
		g.FormatNode(u), g.FormatNode(v), len(paths), dist,
		core.MaxLength(paths), core.MaxLenBound(g, u, v))
	for i, p := range paths {
		fmt.Fprintf(w, "\npath %d (%d hops):\n", i+1, len(p)-1)
		printPath(w, g, p)
	}
	return nil
}

func printPath(w io.Writer, g *hhc.Graph, p []hhc.Node) {
	for i, node := range p {
		kind := ""
		if i > 0 {
			if p[i-1].X == node.X {
				kind = " (local)"
			} else {
				kind = " (external)"
			}
		}
		fmt.Fprintf(w, "  %2d  %s%s\n", i, g.FormatNode(node), kind)
	}
}

// containerJSON is the interchange shape -json emits.
type containerJSON struct {
	M     int        `json:"m"`
	U     string     `json:"u"`
	V     string     `json:"v"`
	Width int        `json:"width"`
	Paths [][]string `json:"paths"`
}

func emitJSON(w io.Writer, g *hhc.Graph, u, v hhc.Node, paths [][]hhc.Node) error {
	out := containerJSON{M: g.M(), U: g.FormatNode(u), V: g.FormatNode(v), Width: len(paths)}
	for _, p := range paths {
		nodes := make([]string, len(p))
		for i, n := range p {
			nodes[i] = g.FormatNode(n)
		}
		out.Paths = append(out.Paths, nodes)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
