package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// debugServer assembles a fake hhcd debug surface: a registry with the
// pathsvc metric names, a series ring with one injected interval, and a
// flight recorder holding a slow request.
func debugServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Gauge("pathsvc_queue_depth", "").Set(3)
	reg.Gauge("pathsvc_queue_capacity", "").Set(64)
	reg.Gauge("pathsvc_active_workers", "").Set(2)
	reg.Gauge("pathsvc_open_conns", "").Set(4)
	reg.Gauge(`pathsvc_request_seconds_window{q="p99"}`, "").Set(0.012)

	tr := obs.NewTracer(16)
	rt := obs.NewRequestTracer(4)
	obs.RegisterSelf(reg, tr, rt)
	q := rt.StartRequest("paths", "req-slow")
	time.Sleep(time.Millisecond)
	q.Finish("")

	ring := obs.NewSeriesRing(reg, time.Second, 8)
	c := reg.Counter("pathsvc_completed_total", "")
	ring.Sample()
	c.Add(55)
	ring.Sample()

	mux := obs.Mux(reg)
	mux.Handle("/debug/series", ring.Handler())
	mux.Handle("/debug/requests", rt.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestOnceRendersDashboard(t *testing.T) {
	srv := debugServer(t)
	var out bytes.Buffer
	err := run(&out, nil, topOpts{
		addr: strings.TrimPrefix(srv.URL, "http://"),
		once: true, refresh: time.Second, slowN: 5, rates: 8,
		timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("run -once: %v", err)
	}
	body := out.String()
	for _, want := range []string{
		"hhctop",
		"service   qps ",
		"shed 0/s",
		"queue     depth 3/64",
		"p99 12ms",
		"pathsvc_completed_total",
		"obs       spans",
		"slowest requests (1 seen, 0 errored)",
		"req-slow",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard lacks %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "\x1b[2J") {
		t.Error("-once frame contains screen-control escapes")
	}
}

// TestServerAgnostic: a registry without the pathsvc set still renders —
// the service section is skipped, generic rates and obs health remain.
func TestServerAgnostic(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewSeriesRing(reg, time.Second, 8)
	c := reg.Counter("sim_steps_total", "")
	ring.Sample()
	c.Add(7)
	ring.Sample()
	mux := obs.Mux(reg)
	mux.Handle("/debug/series", ring.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out bytes.Buffer
	err := run(&out, nil, topOpts{
		addr: strings.TrimPrefix(srv.URL, "http://"),
		once: true, refresh: time.Second, slowN: 5, rates: 8,
		timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("run -once: %v", err)
	}
	if strings.Contains(out.String(), "service   qps") {
		t.Errorf("service section rendered without pathsvc metrics:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sim_steps_total") {
		t.Errorf("generic rates missing:\n%s", out.String())
	}
}

func TestDeadServerErrors(t *testing.T) {
	err := run(&bytes.Buffer{}, nil, topOpts{
		addr: "127.0.0.1:1", once: true, refresh: time.Second,
		timeout: 500 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "/debug/series") {
		t.Fatalf("got %v, want an actionable poll error", err)
	}
}

func TestParseProm(t *testing.T) {
	in := `# HELP x_total help text
# TYPE x_total counter
x_total 42
depth{q="p99"} 0.5
malformed line without number trailing
`
	m := parseProm(strings.NewReader(in))
	if m["x_total"] != 42 || m[`depth{q="p99"}`] != 0.5 {
		t.Errorf("parseProm = %v", m)
	}
	if _, ok := m["malformed line without number"]; ok {
		t.Error("malformed line parsed")
	}
}

// TestFleetPanel renders the -cluster multi-peer table against two fake
// peers plus one dead address: live rows carry qps and latency, the dead
// peer stays visible as unreachable.
func TestFleetPanel(t *testing.T) {
	a := debugServer(t)
	b := debugServer(t)
	addrA := strings.TrimPrefix(a.URL, "http://")
	addrB := strings.TrimPrefix(b.URL, "http://")
	dead := "127.0.0.1:1"
	var out bytes.Buffer
	err := run(&out, nil, topOpts{
		cluster: addrA + "," + addrB + "," + dead,
		once:    true, refresh: time.Second, slowN: 5, rates: 8,
		timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("run -cluster -once: %v", err)
	}
	body := out.String()
	for _, want := range []string{
		"hhctop cluster", "3 peers",
		"peer", "qps", "fwd-out/s",
		addrA, addrB,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet panel lacks %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, dead) || !strings.Contains(body, "unreachable") {
		t.Errorf("dead peer row missing from fleet panel:\n%s", body)
	}
	if strings.Contains(body, "\x1b[2J") {
		t.Error("-once fleet frame contains screen-control escapes")
	}
}

// TestFleetPanelBadSpec pins the flag validation.
func TestFleetPanelBadSpec(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, nil, topOpts{cluster: "a:1,,b:2", once: true,
		refresh: time.Second, timeout: time.Second})
	if err == nil {
		t.Fatal("empty peer entry accepted")
	}
}
