// Command hhctop is a live terminal dashboard for a running hhcd (or any
// binary serving the shared -listen debug endpoints). It polls /metrics,
// /debug/series, and /debug/requests and renders the service's pulse:
// request and shed rates, windowed latency quantiles, queue pressure, the
// observability layer's own health, and the slowest retained requests.
//
// Usage:
//
//	hhctop -addr 127.0.0.1:6060              # refresh every 2s until ^C
//	hhctop -addr 127.0.0.1:6060 -refresh 1s
//	hhctop -addr 127.0.0.1:6060 -once        # one frame, no screen control (CI)
//
// The dashboard is server-agnostic: anything the series ring samples is
// shown, with a dedicated service summary when the pathsvc_* metric set is
// present.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6060", "debug address of the observed process (its -listen value)")
	cluster := flag.String("cluster", "",
		"comma-separated peer debug addresses; render the side-by-side per-peer fleet panel instead of one server's dashboard")
	refresh := flag.Duration("refresh", 2*time.Second, "poll and redraw at this period")
	once := flag.Bool("once", false, "render a single frame without screen control and exit (for CI and piping)")
	slowN := flag.Int("slow", 5, "slowest retained requests to list (0 = hide the section)")
	rates := flag.Int("rates", 8, "busiest counter rates to list")
	timeout := flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), topOpts{
			addr: *addr, cluster: *cluster, refresh: *refresh, once: *once,
			slowN: *slowN, rates: *rates, timeout: *timeout,
		})
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhctop:", err)
		os.Exit(1)
	}
}

type topOpts struct {
	addr    string
	cluster string
	refresh time.Duration
	once    bool
	slowN   int
	rates   int
	timeout time.Duration
}

func run(w io.Writer, args []string, o topOpts) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if o.refresh <= 0 {
		return fmt.Errorf("-refresh %s out of range: must be positive", o.refresh)
	}
	client := &http.Client{Timeout: o.timeout}
	if o.cluster != "" {
		return runFleet(w, client, o)
	}
	base := "http://" + o.addr
	if o.once {
		frame, err := poll(client, base)
		if err != nil {
			return err
		}
		render(w, o, frame)
		return nil
	}
	for {
		frame, err := poll(client, base)
		if err != nil {
			return err
		}
		// Clear and home between frames, top-style; errors abort the loop so
		// a dead server ends the session instead of spinning on a blank
		// screen.
		fmt.Fprint(w, "\x1b[2J\x1b[H")
		render(w, o, frame)
		time.Sleep(o.refresh)
	}
}

// peerFrame is one fleet-panel row: a peer's poll result or its failure.
// A dead peer stays a visible row — the fleet view's job is exactly to
// show which member dropped out, not to abort on it.
type peerFrame struct {
	addr string
	f    frame
	err  error
}

// runFleet drives the -cluster panel: every peer polled each cycle, one
// row per peer with its qps, window latency, and forward traffic.
func runFleet(w io.Writer, client *http.Client, o topOpts) error {
	var addrs []string
	for _, p := range strings.Split(o.cluster, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return fmt.Errorf("-cluster %q: empty peer entry", o.cluster)
		}
		addrs = append(addrs, p)
	}
	for {
		rows := make([]peerFrame, 0, len(addrs))
		for _, addr := range addrs {
			f, err := poll(client, "http://"+addr)
			rows = append(rows, peerFrame{addr: addr, f: f, err: err})
		}
		if !o.once {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderFleet(w, rows)
		if o.once {
			return nil
		}
		time.Sleep(o.refresh)
	}
}

// renderFleet prints the side-by-side per-peer table. The down column is
// how many cluster members this peer's breaker currently holds down —
// disagreement across rows localizes a partition.
func renderFleet(w io.Writer, rows []peerFrame) {
	fmt.Fprintf(w, "hhctop cluster  %s  %d peers\n\n", time.Now().Format("15:04:05"), len(rows))
	fmt.Fprintf(w, "  %-22s %8s %10s %10s %10s %10s %9s %5s\n",
		"peer", "qps", "p50", "p99", "fwd-out/s", "fwd-in/s", "errs/s", "down")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(w, "  %-22s unreachable: %v\n", r.addr, r.err)
			continue
		}
		p := latestPoint(r.f.series)
		prom := r.f.metrics
		down := 0
		for name, v := range prom {
			if strings.HasPrefix(name, "cluster_peer_down{") && v > 0 {
				down++
			}
		}
		fmt.Fprintf(w, "  %-22s %8s %10s %10s %10s %10s %9s %5d\n",
			r.addr,
			fmtRate(p.Rates["pathsvc_completed_total"]),
			fmtSecs(prom[`pathsvc_request_seconds_window{q="p50"}`]),
			fmtSecs(prom[`pathsvc_request_seconds_window{q="p99"}`]),
			fmtRate(p.Rates["cluster_forwarded_total"]),
			fmtRate(p.Rates["cluster_forwarded_in_total"]),
			fmtRate(p.Rates["cluster_forward_errors_total"]),
			down)
	}
}

// frame is everything one poll gathered. Requests is optional (nil when
// the server exposes no flight recorder); series and metrics are required
// — without them there is nothing to show.
type frame struct {
	at       time.Time
	series   obs.SeriesSnapshot
	metrics  map[string]float64
	requests *obs.RequestsSnapshot
}

func poll(client *http.Client, base string) (frame, error) {
	f := frame{at: time.Now()}
	if err := getJSON(client, base+"/debug/series", &f.series); err != nil {
		return f, fmt.Errorf("%s/debug/series: %w (is the server running with -listen?)", base, err)
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return f, err
	}
	f.metrics = parseProm(resp.Body)
	resp.Body.Close()
	var rq obs.RequestsSnapshot
	if err := getJSON(client, base+"/debug/requests?format=json", &rq); err == nil {
		f.requests = &rq
	}
	return f, nil
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// parseProm reads the Prometheus text exposition into name{labels}→value.
// Only the subset the registry emits is handled (no escaping, one value
// per line), which is exactly what the paired server produces.
func parseProm(r io.Reader) map[string]float64 {
	m := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			m[line[:i]] = v
		}
	}
	return m
}

func render(w io.Writer, o topOpts, f frame) {
	last := latestPoint(f.series)
	fmt.Fprintf(w, "hhctop %s  %s  interval %s  %d/%d points\n\n",
		o.addr, f.at.Format("15:04:05"),
		time.Duration(f.series.IntervalNS), len(f.series.Points), f.series.Capacity)

	renderService(w, last, f.metrics)
	renderRates(w, o.rates, last)
	renderHists(w, last, f.series.Summary)
	renderObsHealth(w, f.metrics)
	if o.slowN > 0 && f.requests != nil {
		renderSlowest(w, o.slowN, f.requests)
	}
}

func latestPoint(s obs.SeriesSnapshot) obs.SeriesPoint {
	if len(s.Points) == 0 {
		return obs.SeriesPoint{}
	}
	return s.Points[len(s.Points)-1]
}

// renderService prints the pathsvc one-liner when the metric set is
// present; other servers (hhcsim) simply skip it.
func renderService(w io.Writer, p obs.SeriesPoint, prom map[string]float64) {
	if _, ok := prom["pathsvc_queue_capacity"]; !ok {
		return
	}
	fmt.Fprintf(w, "  service   qps %s  shed %s/s  coalesced %s/s  degraded %s/s\n",
		fmtRate(p.Rates["pathsvc_completed_total"]),
		fmtRate(p.Rates["pathsvc_shed_total"]),
		fmtRate(p.Rates["pathsvc_coalesced_total"]),
		fmtRate(p.Rates["pathsvc_degraded_total"]))
	fmt.Fprintf(w, "  queue     depth %.0f/%.0f  active workers %.0f  open conns %.0f\n",
		prom["pathsvc_queue_depth"], prom["pathsvc_queue_capacity"],
		prom["pathsvc_active_workers"], prom["pathsvc_open_conns"])
	fmt.Fprintf(w, "  latency   p50 %s  p95 %s  p99 %s   (10s window)\n",
		fmtSecs(prom[`pathsvc_request_seconds_window{q="p50"}`]),
		fmtSecs(prom[`pathsvc_request_seconds_window{q="p95"}`]),
		fmtSecs(prom[`pathsvc_request_seconds_window{q="p99"}`]))
	renderCluster(w, p, prom)
	fmt.Fprint(w, "\n")
}

// renderCluster prints the sharded-serving line when this peer exposes the
// cluster_* series (hhcd -peers); single-node servers simply skip it.
func renderCluster(w io.Writer, p obs.SeriesPoint, prom map[string]float64) {
	if _, ok := prom["cluster_forwarded_total"]; !ok {
		return
	}
	down := 0
	for name, v := range prom {
		if strings.HasPrefix(name, "cluster_peer_down{") && v > 0 {
			down++
		}
	}
	fmt.Fprintf(w, "  cluster   %.0f peers (%d down)  fwd-out %s/s  fwd-in %s/s  fwd-errs %s/s  degraded-local %s/s\n",
		prom["cluster_peers"], down,
		fmtRate(p.Rates["cluster_forwarded_total"]),
		fmtRate(p.Rates["cluster_forwarded_in_total"]),
		fmtRate(p.Rates["cluster_forward_errors_total"]),
		fmtRate(p.Rates["cluster_degraded_local_total"]))
}

func renderRates(w io.Writer, n int, p obs.SeriesPoint) {
	type kv struct {
		name string
		rate float64
	}
	var rows []kv
	for name, r := range p.Rates {
		if r > 0 {
			rows = append(rows, kv{name, r})
		}
	}
	if len(rows) == 0 {
		fmt.Fprint(w, "  rates     (no counter activity in the last interval)\n\n")
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rate != rows[j].rate {
			return rows[i].rate > rows[j].rate
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	fmt.Fprint(w, "  rates     ")
	for i, r := range rows {
		if i > 0 {
			fmt.Fprint(w, "\n            ")
		}
		fmt.Fprintf(w, "%-40s %s/s", r.name, fmtRate(r.rate))
	}
	fmt.Fprint(w, "\n\n")
}

func renderHists(w io.Writer, p obs.SeriesPoint, summary map[string]obs.HistPoint) {
	if len(p.Hists) == 0 && len(summary) == 0 {
		return
	}
	names := make([]string, 0, len(summary))
	for name := range summary {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprint(w, "  hist                                               last interval              ring summary\n")
	for _, name := range names {
		h, s := p.Hists[name], summary[name]
		fmt.Fprintf(w, "    %-44s p50 %-9s p99 %-9s p50 %-9s p99 %-9s\n",
			name, fmtSecs(h.P50), fmtSecs(h.P99), fmtSecs(s.P50), fmtSecs(s.P99))
	}
	fmt.Fprint(w, "\n")
}

// renderObsHealth surfaces the telemetry layer's own counters: dropped
// spans mean the -trace stream is lossy and the numbers elsewhere are
// undercounting.
func renderObsHealth(w io.Writer, prom map[string]float64) {
	dropped, hasDropped := prom["obs_trace_dropped_total"]
	recorded, hasRecorded := prom["obs_requests_recorded_total"]
	if !hasDropped && !hasRecorded {
		return
	}
	fmt.Fprintf(w, "  obs       spans %.0f (dropped %.0f)  requests recorded %.0f (errored %.0f)\n\n",
		prom["obs_trace_spans_total"], dropped,
		recorded, prom["obs_requests_errored_total"])
}

func renderSlowest(w io.Writer, n int, rq *obs.RequestsSnapshot) {
	fmt.Fprintf(w, "  slowest requests (%d seen, %d errored)\n", rq.Total, rq.Errored)
	if len(rq.Slowest) == 0 {
		fmt.Fprint(w, "    none retained\n")
		return
	}
	rows := rq.Slowest
	if len(rows) > n {
		rows = rows[:n]
	}
	for _, tr := range rows {
		outcome := "ok"
		if tr.Code != "" {
			outcome = tr.Code
		}
		fmt.Fprintf(w, "    %-10s %-8s %10s  %s\n",
			tr.ID, tr.Op, time.Duration(tr.Dur), outcome)
	}
}

// fmtRate renders a per-second rate compactly (1234 -> "1234", 0.5 -> "0.5").
func fmtRate(v float64) string {
	if v >= 100 || v == float64(int64(v)) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 3, 64)
}

// fmtSecs renders a duration given in seconds with ms/µs granularity.
func fmtSecs(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
