// Command hhccache demonstrates the memoizing container cache: it replays a
// repeated workload of node pairs (plus automorphic twins of each pair)
// through the cache, verifies a sample of the returned containers, and
// prints the counters alongside a cold/warm timing comparison.
//
// Usage:
//
//	hhccache -m 4 -pairs 64 -rounds 50
//	hhccache -m 4 -canon full            # maximal sharing, verified results
//	hhccache -m 4 -canon off -capacity 128
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hhc"
)

func main() {
	m := flag.Int("m", 4, "son-cube dimension m (1..6)")
	pairs := flag.Int("pairs", 64, "distinct source/destination pairs in the workload")
	rounds := flag.Int("rounds", 50, "times the workload is replayed (with translated twins)")
	shards := flag.Int("shards", cache.DefaultShards, "cache shard count (rounded up to a power of two)")
	capacity := flag.Int("capacity", cache.DefaultCapacity, "max cached containers (<0 = unbounded)")
	canon := flag.String("canon", "exact", "canonicalization: exact|full|off")
	workers := flag.Int("workers", 0, "batch workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "workload seed")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *m, *pairs, *rounds, *shards, *capacity, *canon, *workers, *seed)
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhccache:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, m, pairs, rounds, shards, capacity int, canon string, workers int, seed int64) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(m); err != nil {
		return err
	}
	if pairs < 1 || rounds < 1 {
		return fmt.Errorf("-pairs %d / -rounds %d out of range: both must be >= 1", pairs, rounds)
	}
	mode, err := cache.ParseCanon(canon)
	if err != nil {
		return err
	}
	g, err := hhc.New(m)
	if err != nil {
		return err
	}
	c, err := cache.New(g, cache.Options{Shards: shards, Capacity: capacity, Canon: mode})
	if err != nil {
		return err
	}

	// Workload: each round requests every base pair plus an X-translated
	// twin. The twins are distinct pairs that ask for symmetric containers;
	// canonicalization lets them share one cache entry.
	base := gen.Pairs(g, pairs, gen.Uniform, seed)
	var work []core.Pair
	for r := 0; r < rounds; r++ {
		shift := uint64(r) & (1<<uint(g.T()) - 1)
		for _, p := range base {
			work = append(work, core.Pair{U: p.U, V: p.V})
			work = append(work, core.Pair{
				U: hhc.Node{X: p.U.X ^ shift, Y: p.U.Y},
				V: hhc.Node{X: p.V.X ^ shift, Y: p.V.Y},
			})
		}
	}
	opt := core.Options{}

	fmt.Fprintf(w, "hhccache: HHC_%d (m=%d), %d distinct pairs, %d rounds, %d requests, canon=%s\n",
		g.N(), m, pairs, rounds, len(work), mode)

	start := time.Now()
	direct := core.DisjointPathsBatch(g, work, opt, workers)
	directTime := time.Since(start)

	start = time.Now()
	cached := c.Batch(work, opt, workers)
	cachedTime := time.Since(start)

	// Verify every cached container and, for the default exact mode, check
	// bit-identity against the direct construction.
	verified := 0
	for i, r := range cached {
		if r.Err != nil {
			return fmt.Errorf("pair %s -> %s: %w", g.FormatNode(r.Pair.U), g.FormatNode(r.Pair.V), r.Err)
		}
		if err := core.VerifyContainer(g, r.Pair.U, r.Pair.V, r.Paths); err != nil {
			return fmt.Errorf("pair %s -> %s: %w", g.FormatNode(r.Pair.U), g.FormatNode(r.Pair.V), err)
		}
		if mode == cache.CanonExact && !equalContainers(r.Paths, direct[i].Paths) {
			return fmt.Errorf("pair %s -> %s: cached container differs from direct construction",
				g.FormatNode(r.Pair.U), g.FormatNode(r.Pair.V))
		}
		verified++
	}

	snap := c.Snapshot()
	fmt.Fprintf(w, "  verified         %d/%d containers (%d node-disjoint paths each)\n",
		verified, len(cached), g.Degree())
	if mode == cache.CanonExact {
		fmt.Fprintf(w, "  bit-identical    yes (every cached result equals DisjointPathsOpt output)\n")
	}
	fmt.Fprintf(w, "  counters         %s\n", snap)
	fmt.Fprintf(w, "  cache entries    %d\n", c.Len())
	fmt.Fprintf(w, "  direct batch     %v\n", directTime.Round(time.Microsecond))
	fmt.Fprintf(w, "  cached batch     %v\n", cachedTime.Round(time.Microsecond))
	if cachedTime > 0 {
		fmt.Fprintf(w, "  speedup          %.1fx\n", float64(directTime)/float64(cachedTime))
	}
	return nil
}

func equalContainers(a, b [][]hhc.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
