package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExact(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, 8, 5, 4, 256, "exact", 2, 7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"canon=exact",
		"bit-identical    yes",
		"hit-rate=",
		"speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFullAndOff(t *testing.T) {
	for _, canon := range []string{"full", "off"} {
		var buf bytes.Buffer
		if err := run(&buf, nil, 2, 6, 4, 2, -1, canon, 0, 3); err != nil {
			t.Fatalf("canon=%s: %v", canon, err)
		}
		out := buf.String()
		if !strings.Contains(out, "verified") || strings.Contains(out, "bit-identical") {
			t.Errorf("canon=%s output wrong:\n%s", canon, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, 8, 5, 4, 256, "banana", 0, 1); err == nil {
		t.Error("unknown canon mode accepted")
	}
	if err := run(&buf, nil, 3, 0, 5, 4, 256, "exact", 0, 1); err == nil {
		t.Error("-pairs 0 accepted")
	}
	if err := run(&buf, nil, 3, 8, 0, 4, 256, "exact", 0, 1); err == nil {
		t.Error("-rounds 0 accepted")
	}
}

// TestRunArgValidation: trailing positional args are rejected and -m is
// validated up front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, 3, 8, 5, 4, 256, "exact", 0, 1); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
	if err := run(&buf, nil, 99, 8, 5, 4, 256, "exact", 0, 1); err == nil ||
		!strings.Contains(err.Error(), "1..6") {
		t.Errorf("-m validation not actionable: %v", err)
	}
}
