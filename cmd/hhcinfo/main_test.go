package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, "", false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"HHC_11", "degree = connectivity    4", "2^11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExactDiameter(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, "", true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter (exact)         8") {
		t.Fatalf("exact diameter missing:\n%s", buf.String())
	}
}

func TestRunNodeNeighborhood(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, "0x5:1", false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "external neighbor       0x7:1") {
		t.Fatalf("neighborhood wrong:\n%s", out)
	}
}

func TestRunDistanceDistribution(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, "", false, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mean distance") || !strings.Contains(out, "    8  2") {
		t.Fatalf("distribution output wrong:\n%s", out)
	}
	// m=5 cannot be enumerated.
	if err := run(&buf, nil, 5, "", false, true); err == nil {
		t.Fatal("m=5 distribution accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 9, "", false, false); err == nil {
		t.Error("m=9 accepted")
	}
	if err := run(&buf, nil, 2, "zzz", false, false); err == nil {
		t.Error("bad node accepted")
	}
	if err := run(&buf, nil, 4, "", true, false); err == nil {
		t.Error("exact diameter at m=4 accepted (too large)")
	}
}

// TestRunArgValidation: trailing positional args are rejected and -m is
// validated up front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, 3, "", false, false); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
	if err := run(&buf, nil, 0, "", false, false); err == nil ||
		!strings.Contains(err.Error(), "1..6") {
		t.Errorf("-m validation not actionable: %v", err)
	}
}
