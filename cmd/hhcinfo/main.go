// Command hhcinfo prints structural information about a hierarchical
// hypercube topology: sizes, degree, diameter bound, and optionally the
// neighborhood of a given node.
//
// Usage:
//
//	hhcinfo -m 3
//	hhcinfo -m 3 -node 0x2a:3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/graph"
	"repro/internal/hhc"
)

func main() {
	m := flag.Int("m", 3, "son-cube dimension m (1..6); the network is HHC_{2^m+m}")
	nodeSpec := flag.String("node", "", "optional node x:y whose neighborhood to print")
	exact := flag.Bool("exact", false, "compute the exact diameter by all-source BFS (m <= 2)")
	dist := flag.Bool("dist", false, "print the exact distance distribution (m <= 4)")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *m, *nodeSpec, *exact, *dist)
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcinfo:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, m int, nodeSpec string, exact, dist bool) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(m); err != nil {
		return err
	}
	g, err := hhc.New(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hierarchical hypercube HHC_%d (m=%d)\n", g.N(), m)
	fmt.Fprintf(w, "  son-cube dimension   m = %d   (each son-cube is a Q_%d of %d processors)\n", m, m, g.T())
	fmt.Fprintf(w, "  super-cube dimension t = %d   (2^%d son-cubes)\n", g.T(), g.T())
	fmt.Fprintf(w, "  address length       n = %d   (2^%d nodes)\n", g.N(), g.N())
	if count, ok := g.NumNodes(); ok {
		fmt.Fprintf(w, "  nodes                    %d\n", count)
	}
	fmt.Fprintf(w, "  degree = connectivity    %d\n", g.Degree())
	fmt.Fprintf(w, "  diameter             <=  %d   (Gray-cycle routing bound 2^(m+1)+m)\n", g.DiameterUpperBound())

	if exact {
		dg, err := g.Dense()
		if err != nil {
			return err
		}
		diam, err := graph.Diameter(dg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  diameter (exact)         %d\n", diam)
	}

	if dist {
		hist, err := g.DistanceDistribution()
		if err != nil {
			return err
		}
		mean, err := g.MeanDistance()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\ndistance distribution (from any node; the network is vertex-transitive)\n")
		fmt.Fprintf(w, "  mean distance  %.3f\n", mean)
		for d, c := range hist {
			fmt.Fprintf(w, "  %3d  %d\n", d, c)
		}
	}

	if nodeSpec != "" {
		u, err := g.ParseNode(nodeSpec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nnode %s\n", g.FormatNode(u))
		for i := 0; i < m; i++ {
			fmt.Fprintf(w, "  local neighbor (dim %d)  %s\n", i, g.FormatNode(g.LocalNeighbor(u, i)))
		}
		fmt.Fprintf(w, "  external neighbor       %s  (super-dimension %d)\n",
			g.FormatNode(g.ExternalNeighbor(u)), u.Y)
	}
	return nil
}
