// Command hhcbcast analyzes broadcast on the hierarchical hypercube: it
// builds the distributed dimension-ordered spanning tree from a root,
// validates it, and reports depth (all-port rounds), the exact minimum
// one-port rounds, and per-level population.
//
// Usage:
//
//	hhcbcast -m 3
//	hhcbcast -m 3 -root 0x2a:3 -levels
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/cliutil"
	"repro/internal/collective"
	"repro/internal/hhc"
)

func main() {
	m := flag.Int("m", 3, "son-cube dimension m (tree materialization needs m <= 4)")
	rootSpec := flag.String("root", "0x0:0", "broadcast root x:y")
	levels := flag.Bool("levels", false, "print per-level node counts")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *m, *rootSpec, *levels)
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcbcast:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, m int, rootSpec string, showLevels bool) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(m); err != nil {
		return err
	}
	g, err := hhc.New(m)
	if err != nil {
		return err
	}
	root, err := g.ParseNode(rootSpec)
	if err != nil {
		return err
	}
	tree, err := collective.BuildTree(g, root)
	if err != nil {
		return err
	}
	if err := tree.Validate(g); err != nil {
		return fmt.Errorf("tree validation failed: %w", err)
	}
	n, _ := g.NumNodes()
	lower := int(math.Ceil(math.Log2(float64(n))))
	fmt.Fprintf(w, "broadcast tree on HHC_%d (m=%d, %d nodes), root %s\n", g.N(), m, n, g.FormatNode(root))
	fmt.Fprintf(w, "  spanning            yes (validated: every node reached exactly once over real edges)\n")
	fmt.Fprintf(w, "  depth               %d   (= all-port broadcast rounds)\n", tree.Depth)
	fmt.Fprintf(w, "  one-port rounds     %d   (exact tree DP)\n", tree.OnePortRounds())
	fmt.Fprintf(w, "  lower bound         %d   (ceil(log2 N): doubling argument)\n", lower)
	fmt.Fprintf(w, "  max fan-out         %d   (<= degree %d)\n", tree.MaxChildren(), g.Degree())
	if showLevels {
		fmt.Fprintln(w, "\n  level  nodes")
		for d, level := range tree.Levels() {
			fmt.Fprintf(w, "  %5d  %d\n", d, len(level))
		}
	}
	return nil
}
