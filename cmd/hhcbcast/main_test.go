package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, "0x0:0", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"broadcast tree on HHC_6", "spanning            yes", "lower bound         6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunLevels(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, "0x3:1", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "level  nodes") {
		t.Fatalf("levels missing:\n%s", out)
	}
	// Level 0 always holds exactly the root.
	if !strings.Contains(out, "    0  1\n") {
		t.Fatalf("level 0 wrong:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 6, "0x0:0", false); err == nil {
		t.Error("m=6 tree materialization accepted")
	}
	if err := run(&buf, nil, 2, "junk", false); err == nil {
		t.Error("bad root accepted")
	}
	if err := run(&buf, nil, 0, "0x0:0", false); err == nil {
		t.Error("bad m accepted")
	}
}

// TestRunArgValidation: trailing positional args are rejected and -m is
// validated up front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, 2, "0x0:0", false); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
	if err := run(&buf, nil, -1, "0x0:0", false); err == nil ||
		!strings.Contains(err.Error(), "1..6") {
		t.Errorf("-m validation not actionable: %v", err)
	}
}
