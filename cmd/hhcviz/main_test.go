package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTopology(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, true, "", "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "graph hhc6 {") {
		t.Fatalf("not DOT:\n%.100s", buf.String())
	}
}

func TestRunContainer(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, false, "0x00:0", "0xff:5", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph container {") {
		t.Fatalf("not a container DOT:\n%.100s", buf.String())
	}
}

func TestRunRing(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 3, false, "", "", 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph ring {") {
		t.Fatalf("not a ring DOT:\n%.100s", out)
	}
	// 8 son-cubes × 8 processors = 64 edges in the cycle.
	if got := strings.Count(out, " -- "); got != 64 {
		t.Fatalf("%d ring edges, want 64", got)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 2, false, "", "", 0); err == nil {
		t.Error("no action accepted")
	}
	if err := run(&buf, nil, 3, true, "", "", 0); err == nil {
		t.Error("m=3 topology accepted")
	}
	if err := run(&buf, nil, 2, false, "bad", "0x0:0", 0); err == nil {
		t.Error("bad node accepted")
	}
	if err := run(&buf, nil, 2, false, "0x0:0", "bad", 0); err == nil {
		t.Error("bad node accepted")
	}
	if err := run(&buf, nil, 2, false, "", "", 99); err == nil {
		t.Error("oversized ring accepted")
	}
	if err := run(&buf, nil, 99, true, "", "", 0); err == nil {
		t.Error("bad m accepted")
	}
}

// TestRunArgValidation: trailing positional args are rejected and -m is
// validated up front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, 2, true, "", "", 0); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
	if err := run(&buf, nil, 7, true, "", "", 0); err == nil ||
		!strings.Contains(err.Error(), "1..6") {
		t.Errorf("-m validation not actionable: %v", err)
	}
}
