// Command hhcviz emits Graphviz DOT renderings of hierarchical hypercube
// structures: a small whole topology, a disjoint-path container, or an
// embedded ring. Pipe to `dot -Tsvg` / `neato -Tpng` to draw.
//
// Usage:
//
//	hhcviz -m 2 -topology                  > topo.dot
//	hhcviz -m 3 -u 0x00:0 -v 0xff:5        > container.dot
//	hhcviz -m 3 -ring 4                    > ring.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/hhc"
	"repro/internal/viz"
)

func main() {
	m := flag.Int("m", 2, "son-cube dimension m")
	topology := flag.Bool("topology", false, "render the whole network (m <= 2)")
	uSpec := flag.String("u", "", "container source x:y")
	vSpec := flag.String("v", "", "container destination x:y")
	ring := flag.Int("ring", 0, "render the ring through 2^r son-cubes (r >= 2)")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *m, *topology, *uSpec, *vSpec, *ring)
	}
	// DOT goes to stdout, so pipelines should give -metrics a file path
	// rather than '-' (which would interleave the dump with the graph).
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcviz:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, m int, topology bool, uSpec, vSpec string, ring int) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if err := cliutil.ValidateM(m); err != nil {
		return err
	}
	g, err := hhc.New(m)
	if err != nil {
		return err
	}
	switch {
	case topology:
		return viz.TopologyDOT(g, w)
	case ring >= 2:
		dims, err := g.RingDims(ring)
		if err != nil {
			return err
		}
		cycle, err := g.EmbedRing(0, dims)
		if err != nil {
			return err
		}
		return viz.RingDOT(g, cycle, w)
	case uSpec != "" && vSpec != "":
		u, err := g.ParseNode(uSpec)
		if err != nil {
			return err
		}
		v, err := g.ParseNode(vSpec)
		if err != nil {
			return err
		}
		paths, err := core.DisjointPaths(g, u, v)
		if err != nil {
			return err
		}
		return viz.ContainerDOT(g, u, v, paths, w)
	default:
		return fmt.Errorf("pick one of -topology, -ring R, or -u/-v (see -h)")
	}
}
