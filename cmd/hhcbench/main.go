// Command hhcbench regenerates the evaluation tables and figures (E1..E22
// in DESIGN.md). Each experiment prints the same rows/series the paper's
// evaluation reports; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	hhcbench                 # run everything, full fidelity
//	hhcbench -exp E3         # one experiment
//	hhcbench -quick          # reduced samples (seconds, for smoke tests)
//	hhcbench -seed 7         # change workload seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	expID := flag.String("exp", "all", "experiment to run: E1..E22 or all")
	quick := flag.Bool("quick", false, "reduced sample sizes")
	seed := flag.Int64("seed", exp.DefaultConfig().Seed, "workload seed")
	format := flag.String("format", "text", "output format: text, csv, or md")
	list := flag.Bool("list", false, "list the experiment catalogue and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed}
	if err := run(os.Stdout, *expID, cfg, *format); err != nil {
		fmt.Fprintln(os.Stderr, "hhcbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, expID string, cfg exp.Config, format string) error {
	if format != "text" && format != "csv" && format != "md" {
		return fmt.Errorf("unknown format %q (want text, csv, or md)", format)
	}
	entries := exp.All()
	if expID != "all" {
		e, err := exp.Find(expID)
		if err != nil {
			return err
		}
		entries = []exp.Entry{e}
	}
	for _, e := range entries {
		start := time.Now()
		if format == "csv" {
			if err := exp.RunAndRenderCSV(e, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		if format == "md" {
			if err := exp.RunAndRenderMarkdown(e, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		if err := exp.RunAndRender(e, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
