// Command hhcbench regenerates the evaluation tables and figures (E1..E22
// in DESIGN.md). Each experiment prints the same rows/series the paper's
// evaluation reports; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	hhcbench                 # run everything, full fidelity
//	hhcbench -exp E3         # one experiment
//	hhcbench -quick          # reduced samples (seconds, for smoke tests)
//	hhcbench -seed 7         # change workload seed
//	hhcbench -cache          # cold/warm container-cache report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/hhc"
)

func main() {
	expID := flag.String("exp", "all", "experiment to run: E1..E22 or all")
	quick := flag.Bool("quick", false, "reduced sample sizes")
	seed := flag.Int64("seed", exp.DefaultConfig().Seed, "workload seed")
	format := flag.String("format", "text", "output format: text, csv, or md")
	list := flag.Bool("list", false, "list the experiment catalogue and exit")
	cacheReport := flag.Bool("cache", false, "benchmark the memoizing container cache (hit rate, cold vs warm speedup) and exit")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		if err := cliutil.NoTrailingArgs(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "hhcbench:", err)
			os.Exit(2)
		}
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed}
	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *expID, cfg, *format, *cacheReport)
	}
	if err == nil && obsf.Registry != nil {
		// With instrumentation on, summarize the per-phase construction
		// latency histograms before the raw dump: the headline numbers a
		// perf PR wants, without parsing exposition format.
		fmt.Println("observability summary (per-phase construction latency):")
		err = obsf.Registry.WriteSummary(os.Stdout)
		fmt.Println()
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, expID string, cfg exp.Config, format string, cacheReport bool) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if cacheReport {
		return runCacheReport(w, cfg.Seed, cfg.Quick)
	}
	if format != "text" && format != "csv" && format != "md" {
		return fmt.Errorf("unknown format %q (want text, csv, or md)", format)
	}
	entries := exp.All()
	if expID != "all" {
		e, err := exp.Find(expID)
		if err != nil {
			return err
		}
		entries = []exp.Entry{e}
	}
	for _, e := range entries {
		start := time.Now()
		if format == "csv" {
			if err := exp.RunAndRenderCSV(e, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		if format == "md" {
			if err := exp.RunAndRenderMarkdown(e, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		if err := exp.RunAndRender(e, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runCacheReport plays a repeated-pair workload against the memoizing
// container cache and reports hit rate and cold/warm speedup for each
// canonicalization mode. The workload models a serving scenario: a few
// distinct flows requested over and over, interleaved with symmetric
// (X-translated) variants that only canonicalization can collapse.
func runCacheReport(w io.Writer, seed int64, quick bool) error {
	const m = 4
	g, err := hhc.New(m)
	if err != nil {
		return err
	}
	distinct, rounds := 64, 50
	if quick {
		distinct, rounds = 16, 10
	}
	base := gen.Pairs(g, distinct, gen.Uniform, seed)
	opt := core.Options{}

	// The request stream: every round asks for each base pair plus an
	// X-translated twin (a symmetric pair under the automorphism group).
	var stream []gen.Pair
	for r := 0; r < rounds; r++ {
		shift := uint64(r) & (1<<uint(g.T()) - 1)
		for _, p := range base {
			stream = append(stream, p)
			stream = append(stream, gen.Pair{
				U: hhc.Node{X: p.U.X ^ shift, Y: p.U.Y},
				V: hhc.Node{X: p.V.X ^ shift, Y: p.V.Y},
			})
		}
	}

	fmt.Fprintf(w, "container cache report: m=%d (HHC_%d), %d distinct flows, %d requests\n\n",
		m, g.N(), distinct, len(stream))

	start := time.Now()
	for _, p := range stream {
		if _, err := core.DisjointPathsOpt(g, p.U, p.V, opt); err != nil {
			return err
		}
	}
	direct := time.Since(start)
	fmt.Fprintf(w, "  %-14s %10v total  %8.1f µs/req\n", "uncached", direct.Round(time.Microsecond),
		float64(direct.Microseconds())/float64(len(stream)))

	for _, mode := range []cache.Canon{cache.CanonOff, cache.CanonExact, cache.CanonFull} {
		c, err := cache.New(g, cache.Options{Canon: mode})
		if err != nil {
			return err
		}
		start = time.Now()
		for _, p := range stream {
			if _, err := c.Paths(p.U, p.V, opt); err != nil {
				return err
			}
		}
		cached := time.Since(start)
		snap := c.Snapshot()
		fmt.Fprintf(w, "  %-14s %10v total  %8.1f µs/req  %5.1fx speedup  %s\n",
			"canon="+mode.String(), cached.Round(time.Microsecond),
			float64(cached.Microseconds())/float64(len(stream)),
			float64(direct)/float64(cached), snap)
	}
	return nil
}
