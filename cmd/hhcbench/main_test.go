package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exp"
)

func quick() exp.Config { return exp.Config{Quick: true, Seed: 5} }

func TestRunSingleExperimentText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "E9", quick(), "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== E9") || !strings.Contains(out, "completed in") {
		t.Fatalf("text output wrong:\n%.200s", out)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "E9", quick(), "csv"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# E9/0:") {
		t.Fatalf("csv output wrong:\n%.200s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Fatal("csv output polluted with progress lines")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "E99", quick(), "text"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(&buf, "E9", quick(), "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
