package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exp"
)

func quick() exp.Config { return exp.Config{Quick: true, Seed: 5} }

func TestRunSingleExperimentText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, "E9", quick(), "text", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== E9") || !strings.Contains(out, "completed in") {
		t.Fatalf("text output wrong:\n%.200s", out)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, "E9", quick(), "csv", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# E9/0:") {
		t.Fatalf("csv output wrong:\n%.200s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Fatal("csv output polluted with progress lines")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, "E99", quick(), "text", false); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(&buf, nil, "E9", quick(), "yaml", false); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestRunCacheReport: -cache emits per-mode rows with hit-rate counters and
// a speedup figure for each canonicalization mode.
func TestRunCacheReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, "all", quick(), "text", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"container cache report",
		"uncached",
		"canon=off", "canon=exact", "canon=full",
		"speedup",
		"hit-rate=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cache report missing %q:\n%s", want, out)
		}
	}
}

// TestRunArgValidation: trailing positional args are rejected with a usage
// error naming the offending argument.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, "E9", quick(), "text", false); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
}
