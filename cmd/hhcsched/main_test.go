package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynthetic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 6, "", 100, 3, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fcfs") || !strings.Contains(out, "backfill") {
		t.Fatalf("policy rows missing:\n%s", out)
	}
	if !strings.Contains(out, "100 jobs") {
		t.Fatalf("job count missing:\n%s", out)
	}
}

func TestRunEmitThenSchedule(t *testing.T) {
	var trace bytes.Buffer
	if err := run(&trace, nil, 5, "", 40, 9, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(trace.String(), "id,arrival,order,duration") {
		t.Fatalf("emit did not produce a trace:\n%.80s", trace.String())
	}
	// Round-trip through a file.
	path := filepath.Join(t.TempDir(), "jobs.csv")
	if err := os.WriteFile(path, trace.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, nil, 5, path, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "40 jobs") {
		t.Fatalf("file trace not scheduled:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil, 6, "", 0, 0, false); err == nil {
		t.Error("no input accepted")
	}
	if err := run(&buf, nil, 6, "x.csv", 10, 0, false); err == nil {
		t.Error("both inputs accepted")
	}
	if err := run(&buf, nil, 6, "/nonexistent/file.csv", 0, 0, false); err == nil {
		t.Error("missing file accepted")
	}
	// Malformed trace file.
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, nil, 6, path, 0, 0, false); err == nil {
		t.Error("malformed trace accepted")
	}
	// Jobs too large for the machine.
	path2 := filepath.Join(t.TempDir(), "big.csv")
	if err := os.WriteFile(path2, []byte("id,arrival,order,duration\n1,0,30,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, nil, 6, path2, 0, 0, false); err == nil {
		t.Error("oversized job accepted")
	}
}

// TestRunArgValidation: trailing positional args are rejected and -t is
// validated up front with an actionable message.
func TestRunArgValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"stray"}, 6, "", 10, 1, false); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Errorf("trailing args not rejected: %v", err)
	}
	if err := run(&buf, nil, 0, "", 10, 1, false); err == nil ||
		!strings.Contains(err.Error(), "1..30") {
		t.Errorf("-t validation not actionable: %v", err)
	}
}
