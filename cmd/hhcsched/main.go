// Command hhcsched runs the space-sharing scheduler over a CSV job trace
// (or a synthetic one) and prints per-policy metrics, or emits a synthetic
// trace for external tools.
//
// Usage:
//
//	hhcsched -t 8 -jobs jobs.csv
//	hhcsched -t 8 -synthetic 300 -seed 7       # generate & schedule
//	hhcsched -t 8 -synthetic 300 -emit          # print the trace as CSV
//
// Trace format: CSV with header id,arrival,order,duration; a job requests
// 2^order son-cubes for duration time steps.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/cliutil"
	"repro/internal/sched"
)

func main() {
	t := flag.Int("t", 8, "super-cube dimension: the machine has 2^t son-cubes")
	// The job-trace flag is -jobs (not -trace): -trace is the shared
	// observability flag that streams JSONL spans.
	tracePath := flag.String("jobs", "", "CSV job trace to schedule")
	synthetic := flag.Int("synthetic", 0, "generate N synthetic jobs instead of reading a trace")
	seed := flag.Int64("seed", 1, "synthetic trace seed")
	emit := flag.Bool("emit", false, "print the synthetic trace as CSV and exit")
	obsf := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	err := obsf.Activate()
	if err == nil {
		err = run(os.Stdout, flag.Args(), *t, *tracePath, *synthetic, *seed, *emit)
	}
	if cerr := obsf.Close(os.Stdout); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhcsched:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, t int, tracePath string, synthetic int, seed int64, emit bool) error {
	if err := cliutil.NoTrailingArgs(args); err != nil {
		return err
	}
	if t < 1 || t > 30 {
		return fmt.Errorf("-t %d out of range: the machine dimension must be 1..30 (2^t son-cubes)", t)
	}
	var jobs []sched.Job
	switch {
	case tracePath != "" && synthetic > 0:
		return fmt.Errorf("pick one of -jobs or -synthetic")
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		jobs, err = sched.ParseTrace(f)
		if err != nil {
			return err
		}
	case synthetic > 0:
		jobs = syntheticJobs(t, synthetic, seed)
	default:
		return fmt.Errorf("provide -jobs FILE or -synthetic N")
	}

	if emit {
		return sched.WriteTrace(w, jobs)
	}

	fmt.Fprintf(w, "machine: 2^%d son-cubes, %d jobs\n\n", t, len(jobs))
	fmt.Fprintf(w, "%-9s %10s %9s %12s %9s\n", "policy", "mean-wait", "max-wait", "utilization", "makespan")
	for _, policy := range []sched.Policy{sched.FCFS, sched.Backfill} {
		_, m, err := sched.Run(t, jobs, policy)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9s %10.1f %9d %11.1f%% %9d\n",
			policy, m.MeanWait, m.MaxWait, 100*m.Utilization, m.Makespan)
	}
	return nil
}

// syntheticJobs mirrors the E19 trace generator.
func syntheticJobs(t, n int, seed int64) []sched.Job {
	r := rand.New(rand.NewSource(seed + int64(t)))
	jobs := make([]sched.Job, n)
	at := int64(0)
	for i := range jobs {
		at += int64(r.Intn(8))
		order := 0
		for order < t && r.Intn(2) == 0 {
			order++
		}
		jobs[i] = sched.Job{ID: i + 1, Arrival: at, Order: order, Duration: int64(1 + r.Intn(60))}
	}
	return jobs
}
